package telemetry

import (
	"strings"
	"testing"
	"time"
)

func testTraceContext() TraceContext {
	return TraceContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
	}
}

// TestJobTraceEvictionOrder pins the bounded-buffer contract: a full
// span ring evicts oldest-first, Snapshot returns survivors in record
// order, and Dropped counts exactly the evicted spans.
func TestJobTraceEvictionOrder(t *testing.T) {
	jt := NewJobTrace(testTraceContext(), 4)
	base := time.Now()
	names := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	for i, name := range names {
		start := base.Add(time.Duration(i) * time.Millisecond)
		jt.Add("", name, "test", start, start.Add(time.Millisecond), nil)
	}

	spans, dropped := jt.Snapshot()
	if dropped != 2 || jt.Dropped() != 2 {
		t.Fatalf("dropped = %d (method %d), want 2", dropped, jt.Dropped())
	}
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, want := range []string{"s3", "s4", "s5", "s6"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q (oldest-first survivors)", i, spans[i].Name, want)
		}
	}
}

// TestJobTraceTree pins tree assembly: a synthetic root carrying the
// client's span ID, children ordered by start time, and spans whose
// parent was evicted attaching to the root instead of vanishing.
func TestJobTraceTree(t *testing.T) {
	tc := testTraceContext()
	jt := NewJobTrace(tc, 8)
	base := time.Now()
	parent := jt.NewSpanID()
	jt.AddWithID(parent, "", "execute", "server", base, base.Add(10*time.Millisecond), nil)
	jt.Add(parent, "child-b", "engine", base.Add(4*time.Millisecond), base.Add(5*time.Millisecond), nil)
	jt.Add(parent, "child-a", "engine", base.Add(2*time.Millisecond), base.Add(3*time.Millisecond), nil)
	jt.Add("deadbeefdeadbeef", "orphan", "engine", base.Add(6*time.Millisecond), base.Add(7*time.Millisecond), nil)

	root := jt.Tree()
	if root == nil || root.SpanID != tc.SpanID || root.Name != "request" {
		t.Fatalf("root = %+v, want synthetic request span %s", root, tc.SpanID)
	}
	var names []string
	for _, ch := range root.Children {
		names = append(names, ch.Name)
	}
	// execute starts first; the orphan's unknown parent reattaches it to
	// the root after execute.
	if got := strings.Join(names, ","); got != "execute,orphan" {
		t.Fatalf("root children = %s, want execute,orphan", got)
	}
	exec := root.Children[0]
	if len(exec.Children) != 2 || exec.Children[0].Name != "child-a" || exec.Children[1].Name != "child-b" {
		t.Fatalf("execute children out of start order: %+v", exec.Children)
	}
}

// TestJobTraceNilSafety pins that a nil JobTrace absorbs every method —
// jobs on servers without tracing never guard their span calls.
func TestJobTraceNilSafety(t *testing.T) {
	var jt *JobTrace
	jt.Add("", "x", "test", time.Now(), time.Now(), nil)
	jt.Mark("", "x", "test", nil)
	if jt.NewSpanID() != "" || jt.Dropped() != 0 || jt.Tree() != nil {
		t.Error("nil JobTrace must be inert")
	}
	if spans, dropped := jt.Snapshot(); spans != nil || dropped != 0 {
		t.Error("nil JobTrace snapshot must be empty")
	}
}

// TestTracerBounded pins the tracer's ring: past capacity the oldest
// events fall out, WriteJSON serves the survivors oldest-first, and the
// drop counter is exact and exported through Register.
func TestTracerBounded(t *testing.T) {
	tr := NewTracerCap(3)
	base := time.Now()
	for i, name := range []string{"e1", "e2", "e3", "e4", "e5"} {
		start := base.Add(time.Duration(i) * time.Millisecond)
		tr.Complete(1, name, "engine", start, start.Add(time.Millisecond), nil)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}

	doc := decodeTrace(t, tr)
	events := doc["traceEvents"].([]any)
	var names []string
	for _, e := range events {
		names = append(names, e.(map[string]any)["name"].(string))
	}
	if got := strings.Join(names, ","); got != "e3,e4,e5" {
		t.Fatalf("retained events = %s, want e3,e4,e5", got)
	}

	reg := NewRegistry()
	tr.Register(reg)
	var found bool
	for _, s := range reg.Snapshot() {
		if s.Name == MetricTraceDropped {
			found = true
			if s.Value != 2 {
				t.Fatalf("%s = %g, want 2", MetricTraceDropped, s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("%s missing from registry snapshot", MetricTraceDropped)
	}
}
