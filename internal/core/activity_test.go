package core

import (
	"reflect"
	"testing"

	"hdsmt/internal/config"
)

// TestActivityEquivalence is the satellite counter-equivalence test: the
// per-unit activity counters must be bit-identical between the optimized
// (event-driven wakeup + fast-forward) and the reference stepping paths —
// the counters count architectural events, never per-cycle polling, so
// skipping idle cycles must not change them. (The full-Results DeepEqual
// in the stepping-equivalence tests covers Activity too; this test pins
// the counters specifically and their internal consistency.)
func TestActivityEquivalence(t *testing.T) {
	cases := []struct {
		cfg     string
		mapping []int
		names   []string
	}{
		{"M8", []int{0, 0}, []string{"gzip", "mcf"}},
		{"2M4+2M2", []int{0, 1, 2, 3}, []string{"gzip", "mcf", "gcc", "twolf"}},
		{"1M6+2M4+2M2", []int{0, 1, 2}, []string{"gcc", "vpr", "eon"}},
	}
	for _, tc := range cases {
		opt, ref, optStats, _ := runBoth(t, tc.cfg, tc.mapping, 5_000, []Option{WithWarmup(1_000)}, tc.names...)
		if !reflect.DeepEqual(opt.Activity, ref.Activity) {
			t.Errorf("%s/%v: activity diverges\noptimized: %+v\nreference: %+v",
				tc.cfg, tc.names, opt.Activity, ref.Activity)
		}

		act := opt.Activity
		// The counters are measured-phase deltas; the stage counters they
		// shadow are global. Internal consistency instead: every committed
		// instruction was fetched, decoded, issued and retired once, so the
		// per-stage counts bound each other.
		var committed uint64
		for _, n := range opt.Committed {
			committed += n
		}
		if act.Fetched < committed {
			t.Errorf("%s: fetched %d < committed %d", tc.cfg, act.Fetched, committed)
		}
		if act.Decoded < committed {
			t.Errorf("%s: decoded %d < committed %d", tc.cfg, act.Decoded, committed)
		}
		if act.RegWrites == 0 || act.RegReads == 0 {
			t.Errorf("%s: register-file activity empty: %+v", tc.cfg, act)
		}
		if act.ICacheReads == 0 || act.DCacheReads == 0 {
			t.Errorf("%s: cache activity empty: %+v", tc.cfg, act)
		}
		if act.BranchLookups == 0 {
			t.Errorf("%s: no branch lookups", tc.cfg)
		}
		if len(act.Pipes) != len(config.MustParse(tc.cfg).Pipelines) {
			t.Fatalf("%s: %d pipe activity records, want %d", tc.cfg, len(act.Pipes), len(config.MustParse(tc.cfg).Pipelines))
		}
		// Issue-queue reads and FU starts are the same events counted from
		// two structures; dispatches write each uop into exactly one queue.
		var qWrites, qReads, fuOps, bufWrites uint64
		for _, pa := range act.Pipes {
			bufWrites += pa.FetchBufWrites
			for k := 0; k < QueueKinds; k++ {
				qWrites += pa.QueueWrites[k]
				qReads += pa.QueueReads[k]
				fuOps += pa.FUOps[k]
			}
		}
		if qReads != fuOps {
			t.Errorf("%s: queue reads %d != FU ops %d", tc.cfg, qReads, fuOps)
		}
		if qWrites != act.Decoded {
			t.Errorf("%s: queue writes %d != decoded %d", tc.cfg, qWrites, act.Decoded)
		}
		if bufWrites != act.Fetched {
			t.Errorf("%s: fetch-buffer writes %d != fetched %d", tc.cfg, bufWrites, act.Fetched)
		}
		if qReads < committed {
			t.Errorf("%s: issued %d < committed %d", tc.cfg, qReads, committed)
		}
		_ = optStats
	}
}

// TestActivityWarmupBaseline pins the measured-phase subtraction: the same
// run with and without warm-up must report different totals (the warm-up
// phase's accesses are excluded), and every counter stays internally
// consistent after subtraction (no wrap-around).
func TestActivityWarmupBaseline(t *testing.T) {
	run := func(warmup uint64) Results {
		var opts []Option
		if warmup > 0 {
			opts = append(opts, WithWarmup(warmup))
		}
		p, err := New(config.MustParse("2M4"), testSpecs(t, "gzip", "mcf"), []int{0, 1}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(4_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cold := run(0)
	warm := run(2_000)
	if cold.Activity.Fetched == 0 || warm.Activity.Fetched == 0 {
		t.Fatal("no fetch activity recorded")
	}
	// Sanity against wrap-around: a uint64 underflow would produce an
	// astronomically large counter.
	const absurd = uint64(1) << 60
	for name, v := range map[string]uint64{
		"fetched": warm.Activity.Fetched, "decoded": warm.Activity.Decoded,
		"reg_reads": warm.Activity.RegReads, "l2": warm.Activity.L2Accesses,
	} {
		if v > absurd {
			t.Errorf("warmup-subtracted %s counter wrapped: %d", name, v)
		}
	}
}
