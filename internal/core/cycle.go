package core

import (
	"fmt"

	"hdsmt/internal/fetch"
	"hdsmt/internal/isa"
	"hdsmt/internal/pipeline"
	"hdsmt/internal/regfile"
	"hdsmt/internal/trace"
)

// ringSize bounds how far ahead a completion or flush event can be
// scheduled: it must exceed the worst-case completion latency (TLB miss 300
// + L1 miss 22 + memory 250 + execute + register write ≈ 600).
const ringSize = 1024

// step advances the processor one cycle. Stages run commit-first (reverse
// pipeline order) so resources freed in a cycle become usable the next
// cycle, the conventional discipline for cycle-level simulators. When the
// machine is provably idle, the clock first fast-forwards over the cycles
// in which no stage could make progress (see fastForward).
func (p *Processor) step() {
	if !p.reference {
		p.fastForward()
	}
	p.cycle++
	p.stats.Cycles = p.cycle
	p.maybeRemap()
	p.commitStage()
	p.writebackStage()
	p.issueStage()
	p.dispatchStage()
	p.fetchStage()
}

// fastForward jumps the clock to just before the next scheduled event when
// the coming cycles cannot change machine state:
//
//   - no issue-queue ready list has an entry (nothing to issue),
//   - no pipeline can dispatch: its fetch buffer is empty, or the head is
//     provably blocked — owning thread's ROB full, target queue full, or
//     the shared register file exhausted,
//   - no ROB head has completed (nothing to commit),
//   - no thread is fetchable until some known future cycle.
//
// Every one of those blockers is lifted only by an event already on the
// books — a completion, a FLUSH detection, an issue timer, an I-cache fill
// arriving, or a dynamic-remap boundary — so the intermediate cycles are
// exactly those the reference stepping would grind through without
// effect, and skipping them is accounting-identical for every simulated
// quantity. (The single exception is per-cycle stall-attempt polling
// counters — regfile.Stats.AllocFails — which by construction count
// skipped polls; nothing in Results derives from them.) Typical win: a
// 250-cycle memory stall costs one ring scan instead of 250 full stage
// sweeps.
func (p *Processor) fastForward() {
	// Fast fail for busy cycles: anything issuable or completed-but-
	// uncommitted means next cycle has work (doneCount == 0 also implies
	// no ROB head is completed, sparing the per-thread check below).
	if p.readyCount != 0 || p.doneCount != 0 {
		return
	}
	c := p.cycle
	for _, b := range p.pipes {
		if u, ok := b.FetchBuf.Head(); ok {
			if u.Stage == pipeline.StageSquashed {
				return // dispatch drains it next cycle
			}
			t := p.threads[u.Thread]
			if !t.rob.Full() && !b.QueueFor(u.Inst.Class).Full() &&
				(!u.Inst.HasDest() || p.rf.FreeCount() > 0) {
				return // head dispatches next cycle
			}
		}
	}
	// limit is the nearest non-ring event; start at the ring horizon (ring
	// slots only hold events less than ringSize ahead).
	limit := c + ringSize
	for _, t := range p.threads {
		if t.finished {
			continue
		}
		if t.pipe >= 0 && t.flushStalled == nil && !t.wrongPathPC &&
			!p.pipes[t.pipe].FetchBuf.Full() {
			if t.fetchReadyAt <= c+1 {
				return // fetch engine can pick this thread next cycle
			}
			if t.fetchReadyAt < limit {
				limit = t.fetchReadyAt
			}
		}
	}
	if p.remapInterval != 0 {
		if next := (c/p.remapInterval + 1) * p.remapInterval; next < limit {
			limit = next
		}
	}
	target := limit
	for cc := c + 1; cc < limit; cc++ {
		s := cc % ringSize
		if len(p.completions[s]) != 0 || len(p.flushAt[s]) != 0 || len(p.issueTimers[s]) != 0 {
			target = cc
			break
		}
	}
	if target > c+1 {
		p.cycle = target - 1
	}
}

// ---------------------------------------------------------------- commit --

// commitStage retires completed instructions in order from each thread's
// ROB. Each pipeline has Width total commit bandwidth per cycle, shared
// among its threads; the starting thread rotates for fairness.
func (p *Processor) commitStage() {
	if !p.reference && p.doneCount == 0 {
		return // nothing has completed since the last commit
	}
	for _, b := range p.pipes {
		n := len(b.Threads)
		if n == 0 {
			continue
		}
		bw := b.Model.Width
		// Rotation without integer division: n is 1 or 2 in practice, and
		// the divisions ran every cycle per pipeline.
		start := 0
		if n > 1 {
			start = int(p.cycle % uint64(n))
		}
		for k := 0; k < n && bw > 0; k++ {
			idx := start + k
			if idx >= n {
				idx -= n
			}
			t := p.threads[b.Threads[idx]]
			if !p.reference && t.doneUops == 0 {
				continue // ROB head cannot be completed
			}
			for bw > 0 && !t.finished {
				u, ok := t.rob.Head()
				if !ok || u.Stage != pipeline.StageDone {
					break
				}
				p.commitOne(t, u)
				bw--
			}
		}
	}
}

func (p *Processor) commitOne(t *thread, u *pipeline.UOp) {
	if u.Inst.WrongPath {
		panic(fmt.Sprintf("core: committing wrong-path uop pc=%#x", u.Inst.PC))
	}
	if u.Inst.Class.IsStore() {
		// Stores retire their cache write at commit, so wrong-path stores
		// never touch memory state.
		p.hier.Store(u.Inst.EffAddr, p.cycle)
		p.activity.DCacheWrites++
	}
	if u.Inst.HasDest() {
		t.renameMap.Commit(u)
		p.rf.Release(u.DestPhys)
	}
	u.Stage = pipeline.StageCommitted
	p.doneCount--
	t.doneUops--
	t.rob.PopHead()
	if p.commitHook != nil {
		p.commitHook(t.id, u.Inst)
	}
	t.committed++
	p.stats.TotalCommitted++
	t.retireTrim(u.Inst.Seq)
	if t.target > 0 && t.committed >= t.target {
		t.finished = true
		p.anyFinished = true
	}
	p.releaseUOp(u)
}

// ------------------------------------------------------------- writeback --

// writebackStage completes executions finishing this cycle: results become
// visible, loads stop counting as in flight, control instructions resolve
// (training the predictor and triggering mispredict recovery), and pending
// FLUSH events fire.
func (p *Processor) writebackStage() {
	c := p.cycle
	// FLUSH events fire before completions: detection happens mid-flight,
	// well before the load's own completion cycle.
	slot := c % ringSize
	for _, u := range p.flushAt[slot] {
		if u.Stage == pipeline.StageIssued {
			p.doFlush(u)
		}
	}
	p.flushAt[slot] = p.flushAt[slot][:0]

	for _, u := range p.completions[slot] {
		if u.Stage != pipeline.StageIssued {
			// Squashed while executing. The completion event is the last
			// reference to the record — its FLUSH-detect event, if any,
			// fired strictly earlier (detect latency < completion latency)
			// — so it can be recycled here rather than leak to the GC.
			if u.Stage == pipeline.StageSquashed {
				p.releaseUOp(u)
			}
			continue
		}
		u.Stage = pipeline.StageDone
		p.doneCount++
		t := p.threads[u.Thread]
		t.doneUops++
		if u.DestPhys != regfile.None {
			p.activity.RegWrites++
			p.wakeReg(u.DestPhys)
		}
		if u.Inst.Class.IsLoad() {
			t.inflightLoads--
		}
		if t.flushStalled == u {
			// The L2-missing load the FLUSH mechanism stalled this thread
			// on has resolved; fetch may proceed (paper: "the offending
			// thread is stalled until the load is resolved").
			t.flushStalled = nil
		}
		if u.Inst.Class.IsControl() && !u.Inst.WrongPath {
			p.resolveControl(t, u)
		}
	}
	p.completions[slot] = p.completions[slot][:0]
}

// resolveControl trains the front-end structures with a resolved
// correct-path control instruction and performs mispredict recovery.
func (p *Processor) resolveControl(t *thread, u *pipeline.UOp) {
	in := &u.Inst
	if in.Class.IsConditional() {
		p.pred.ResolveWith(t.id, in.PC, in.Taken, u.PredTaken)
	}
	if in.Taken {
		p.btb.Update(in.PC, in.Target)
	}
	if u.Mispredict {
		t.stats.Mispredicts++
		p.squashAfter(t, u.FetchSeq)
		t.pc = in.NextPC()
		t.wrongPath = false
		t.wrongPathPC = false
		// Redirect clobbers any pending fetch stall: an in-flight
		// wrong-path I-cache miss is moot once fetch steers elsewhere.
		t.fetchReadyAt = p.cycle + 1
	}
}

// doFlush implements the FLUSH mechanism (Tullsen & Brown; paper §4): on a
// detected L2 miss, the instructions after the missing load are flushed and
// the thread stalls until the load resolves, freeing shared resources for
// the other threads.
func (p *Processor) doFlush(u *pipeline.UOp) {
	t := p.threads[u.Thread]
	u.FlushMiss = true
	t.stats.Flushes++
	p.squashAfter(t, u.FetchSeq)
	t.flushStalled = u
	// Re-fetch resumes, after the stall, at the instruction following the
	// load; the squashed correct-path instructions replay from the buffer.
	t.rewindTo(u.Inst.Seq + 1)
	t.pc = u.Inst.FallThrough()
	t.wrongPath = false
	t.wrongPathPC = false
	t.fetchReadyAt = p.cycle + 1 // stale wrong-path fetch stalls are moot
}

// ---------------------------------------------------------------- squash --

// squashAfter removes every uop of thread t younger than fetch-order
// boundary: ROB entries youngest-first (so rename rollback is well ordered),
// then not-yet-dispatched fetch-buffer entries.
func (p *Processor) squashAfter(t *thread, boundary uint64) {
	for {
		u, ok := t.rob.Tail()
		if !ok || u.FetchSeq <= boundary {
			break
		}
		t.rob.PopTail()
		p.squashUOp(t, u)
	}
	b := p.pipes[t.pipe]
	b.FetchBuf.Do(func(i int, u *pipeline.UOp) bool {
		if u.Thread == t.id && u.FetchSeq > boundary && u.Stage == pipeline.StageFetched {
			p.squashUOp(t, u)
		}
		return true
	})
}

// squashUOp undoes one uop's resource holdings. Callers guarantee rename
// rollback order (youngest writer first within the thread).
func (p *Processor) squashUOp(t *thread, u *pipeline.UOp) {
	switch u.Stage {
	case pipeline.StageFetched:
		// Still in the fetch buffer: no rename state. The buffer slot
		// itself drains at dispatch.
		t.icount--
	case pipeline.StageDispatched:
		p.unwatch(u)
		if u.InReady {
			p.readyCount--
		}
		p.pipes[u.Pipe].QueueFor(u.Inst.Class).Remove(u)
		u.ReadSources(p.rf) // drop reader references
		if u.Inst.HasDest() {
			t.renameMap.Squash(u)
			p.rf.Release(u.DestPhys)
		}
		t.icount--
	case pipeline.StageIssued, pipeline.StageDone:
		// Sources were read at issue. The completion event, if still
		// pending, sees StageSquashed and is ignored.
		if u.Stage == pipeline.StageDone {
			p.doneCount--
			t.doneUops--
		}
		if u.Inst.HasDest() {
			t.renameMap.Squash(u)
			p.rf.Release(u.DestPhys)
		}
	default:
		panic(fmt.Sprintf("core: squashing uop in stage %v", u.Stage))
	}
	if u.Inst.Class.IsLoad() && u.Stage != pipeline.StageDone {
		t.inflightLoads--
	}
	// Issued uops stay referenced by their pending completion-ring entry
	// and must not be recycled; every other stage is safe. Fetched uops
	// remain in the fetch buffer until dispatch drains them, so they are
	// recycled there, not here.
	if u.Stage == pipeline.StageDispatched || u.Stage == pipeline.StageDone {
		p.releaseUOp(u)
	}
	u.Stage = pipeline.StageSquashed
	t.stats.Squashed++
	p.stats.TotalSquashed++
}

// ------------------------------------------------------------------ wake --

// waiter is one pending wakeup subscription: dispatched uop u is waiting
// for the value of its source operand slot src.
type waiter struct {
	u   *pipeline.UOp
	src int8
}

// wakeReg marks physical register ph produced and wakes the dispatched
// consumers waiting on it: each one's outstanding-source count drops, and
// a consumer whose last source just resolved becomes issuable — now, when
// its front-end delay has already elapsed, or at IssueAt via a timer ring
// entry when the value arrived early.
func (p *Processor) wakeReg(ph int) {
	p.rf.SetReady(ph)
	ws := p.waiters[ph]
	for _, w := range ws {
		u := w.u
		u.Waiting[w.src] = false
		u.WaitCount--
		if u.WaitCount == 0 {
			p.scheduleIssuable(u)
		}
	}
	p.waiters[ph] = ws[:0]
}

// scheduleIssuable routes a uop whose operands are all available to the
// ready list — immediately when cycle ≥ IssueAt, otherwise via the issue
// timer ring at IssueAt. Distances are bounded by frontLatency +
// RegAccessLatency - 1, validated against ringSize at construction.
func (p *Processor) scheduleIssuable(u *pipeline.UOp) {
	if u.IssueAt <= p.cycle {
		p.pushReady(u)
		return
	}
	slot := u.IssueAt % ringSize
	p.issueTimers[slot] = append(p.issueTimers[slot], u)
	u.TimerQueued = true
}

// unwatch unsubscribes a dispatched uop from every wakeup source it is
// registered with (waiter lists and the issue-timer ring), so squashed
// records can be recycled without dangling event references. Ready-list
// membership is cleared by IssueQueue.Remove.
func (p *Processor) unwatch(u *pipeline.UOp) {
	for i := range u.Waiting {
		if !u.Waiting[i] {
			continue
		}
		u.Waiting[i] = false
		ws := p.waiters[u.Src[i]]
		for k, w := range ws {
			if w.u == u && w.src == int8(i) {
				ws[k] = ws[len(ws)-1]
				p.waiters[u.Src[i]] = ws[:len(ws)-1]
				break
			}
		}
	}
	u.WaitCount = 0
	if u.TimerQueued {
		u.TimerQueued = false
		slot := u.IssueAt % ringSize
		ts := p.issueTimers[slot]
		for k, tu := range ts {
			if tu == u {
				ts[k] = ts[len(ts)-1]
				p.issueTimers[slot] = ts[:len(ts)-1]
				break
			}
		}
	}
}

// allocUOp takes a recycled uop record or allocates a fresh one.
func (p *Processor) allocUOp() *pipeline.UOp {
	if n := len(p.freeUOps); n > 0 {
		u := p.freeUOps[n-1]
		p.freeUOps = p.freeUOps[:n-1]
		return u
	}
	return new(pipeline.UOp)
}

// releaseUOp returns a uop record to the pool. Callers guarantee no pending
// event-ring entry still references it.
func (p *Processor) releaseUOp(u *pipeline.UOp) {
	p.freeUOps = append(p.freeUOps, u)
}

// ----------------------------------------------------------------- issue --

// issueStage selects ready instructions from each pipeline's queues
// (oldest-first, IQ then LQ then FQ) and starts them on functional units,
// up to the pipeline's width.
//
// The optimized path scans only the per-queue ready lists, which the
// wakeup machinery (wakeReg, the issue-timer ring, dispatch registration)
// keeps current: a uop appears there exactly when its last source has been
// produced and its front-end delay has elapsed. Ready lists order by
// dispatch stamp, so selection is identical to the reference oldest-first
// scan of every entry. Entries that lose a functional-unit race stay on
// the list and retry next cycle, exactly as the polling scan would.
func (p *Processor) issueStage() {
	c := p.cycle
	// Fire the front-end delay timers due this cycle. Ring entries are
	// exactly the uops whose operands resolved before IssueAt (squashes
	// remove theirs eagerly), so each one becomes issuable now.
	slot := c % ringSize
	for _, u := range p.issueTimers[slot] {
		u.TimerQueued = false
		p.pushReady(u)
	}
	p.issueTimers[slot] = p.issueTimers[slot][:0]

	if p.reference {
		p.issueScanAll(c)
		return
	}
	if p.readyCount == 0 {
		return // no queue holds an issuable entry
	}

	extraRF := uint64(p.cfg.Params.RegAccessLatency - 1)
	issued := p.issuedScratch[:0]
	for _, b := range p.pipes {
		budget := b.Model.Width
		for _, q := range b.Queues {
			if budget == 0 {
				break
			}
			if q.ReadyLen() == 0 {
				continue
			}
			issued = issued[:0]
			for _, u := range q.Ready() {
				if budget == 0 {
					break
				}
				if !b.Units.TryIssue(u.Inst.Class, c) {
					continue
				}
				p.issueOne(u, c, extraRF)
				issued = append(issued, u)
				budget--
			}
			for _, u := range issued {
				p.readyCount--
				q.Remove(u)
			}
		}
	}
	p.issuedScratch = issued[:0]
}

// issueScanAll is the reference issue selection: poll every queue entry,
// oldest-first, checking operand readiness against the register file. It
// must stay behaviourally identical to the ready-list path above; the
// equivalence tests compare full runs under both.
func (p *Processor) issueScanAll(c uint64) {
	extraRF := uint64(p.cfg.Params.RegAccessLatency - 1)
	issued := p.issuedScratch[:0]
	for _, b := range p.pipes {
		budget := b.Model.Width
		for _, q := range b.Queues {
			if budget == 0 {
				break
			}
			issued = issued[:0]
			q.Do(func(u *pipeline.UOp) bool {
				if budget == 0 {
					return false
				}
				if u.IssueAt > c || !u.Ready(p.rf) {
					return true
				}
				if !b.Units.TryIssue(u.Inst.Class, c) {
					return true
				}
				p.issueOne(u, c, extraRF)
				issued = append(issued, u)
				budget--
				return true
			})
			for _, u := range issued {
				q.Remove(u)
			}
		}
	}
	p.issuedScratch = issued[:0]
}

func (p *Processor) issueOne(u *pipeline.UOp, c, extraRF uint64) {
	t := p.threads[u.Thread]
	for _, ph := range u.Src {
		if ph != regfile.None {
			p.activity.RegReads++
		}
	}
	u.ReadSources(p.rf)
	kind := isa.QueueFor(u.Inst.Class)
	pa := &p.activity.Pipes[u.Pipe]
	pa.QueueReads[kind]++
	pa.FUOps[kind]++
	lat := uint64(isa.Latency(u.Inst.Class))
	if u.Inst.Class.IsLoad() {
		res := p.hier.Load(u.Inst.EffAddr, c)
		p.activity.DCacheReads++
		if res.L1Miss {
			p.activity.L2Accesses++
		}
		lat += uint64(res.Latency)
		if !u.Inst.WrongPath {
			if res.L1Miss {
				t.stats.LoadMisses++
			}
			if res.L2Miss {
				t.stats.L2LoadMisses++
				if p.flushMech {
					// FLUSH detects the L2 miss once the load has been in
					// the hierarchy longer than an L2 hit could take.
					at := (c + uint64(p.hier.L2DetectLatency())) % ringSize
					p.flushAt[at] = append(p.flushAt[at], u)
				}
			}
		}
	}
	u.DoneCycle = c + lat + extraRF
	if u.DoneCycle-c >= ringSize {
		panic(fmt.Sprintf("core: completion latency %d exceeds event ring", u.DoneCycle-c))
	}
	u.Stage = pipeline.StageIssued
	p.stats.TotalIssued++
	t.icount--
	slot := u.DoneCycle % ringSize
	p.completions[slot] = append(p.completions[slot], u)
}

// -------------------------------------------------------------- dispatch --

// dispatchStage moves instructions from each pipeline's fetch buffer through
// rename into the issue queues and the owning thread's ROB, in order, up to
// the pipeline width and its threads-per-cycle limit. A blocked head stalls
// the buffer (in-order dispatch).
func (p *Processor) dispatchStage() {
	var srcScratch [2]isa.Reg
	for _, b := range p.pipes {
		dispatched := 0
		var seen [2]int // thread ids dispatched this cycle (ThreadsPerCycle <= 2)
		nSeen := 0
		for dispatched < b.Model.Width {
			u, ok := b.FetchBuf.Head()
			if !ok {
				break
			}
			if u.Stage == pipeline.StageSquashed {
				b.FetchBuf.PopHead()
				p.releaseUOp(u)
				continue
			}
			isNew := true
			for i := 0; i < nSeen; i++ {
				if seen[i] == u.Thread {
					isNew = false
					break
				}
			}
			if isNew && nSeen >= b.Model.ThreadsPerCycle {
				break
			}
			t := p.threads[u.Thread]
			if t.rob.Full() {
				break
			}
			q := b.QueueFor(u.Inst.Class)
			if q.Full() {
				break
			}
			// Rename: allocate the destination, resolve the sources.
			if u.Inst.HasDest() {
				ph, ok := p.rf.Alloc()
				if !ok {
					break // shared register file exhausted: stall
				}
				u.DestPhys = ph
			}
			srcs := u.Inst.Sources(srcScratch[:0])
			for i, r := range srcs {
				ph := t.renameMap.Lookup(r)
				u.Src[i] = ph
				p.rf.AddReader(ph)
			}
			if u.Inst.HasDest() {
				t.renameMap.Rename(u)
			}
			p.activity.Decoded++
			p.activity.RenameReads += uint64(len(srcs))
			if u.Inst.HasDest() {
				p.activity.RenameWrites++
			}
			p.activity.Pipes[b.Index].QueueWrites[isa.QueueFor(u.Inst.Class)]++
			u.IssueAt = u.FetchCycle + frontLatency + uint64(p.cfg.Params.RegAccessLatency-1)
			u.Stage = pipeline.StageDispatched
			u.DispatchSeq = p.dispatchSeq
			p.dispatchSeq++
			q.Add(u)
			p.watch(u, q)
			if !t.rob.PushTail(u) {
				panic("core: ROB overflow after Full check")
			}
			b.FetchBuf.PopHead()
			p.stats.TotalDispatched++
			if isNew {
				seen[nSeen] = u.Thread
				nSeen++
			}
			dispatched++
		}
	}
}

// watch subscribes a just-dispatched uop to the wakeup source that will
// make it issuable: a waiter-list entry per source operand still in
// flight, or — when every operand is already available — the issue-timer
// ring (the ready list directly when dispatch was held up past IssueAt;
// issueStage runs before dispatchStage in a cycle, so it is first
// considered next cycle, exactly like the reference scan).
func (p *Processor) watch(u *pipeline.UOp, q *pipeline.IssueQueue) {
	u.WaitCount = 0
	for i := range u.Src {
		if ph := u.Src[i]; ph != regfile.None && !p.rf.Ready(ph) {
			u.WaitCount++
			u.Waiting[i] = true
			p.waiters[ph] = append(p.waiters[ph], waiter{u, int8(i)})
		}
	}
	if u.WaitCount == 0 {
		p.scheduleIssuable(u)
	}
}

// pushReady moves a now-issuable uop onto its queue's ready list.
func (p *Processor) pushReady(u *pipeline.UOp) {
	p.pipes[u.Pipe].QueueFor(u.Inst.Class).PushReady(u)
	p.readyCount++
}

// ----------------------------------------------------------------- fetch --

// fetchStage runs the shared fetch engine: the policy ranks threads, and up
// to FetchMaxThreads threads supply up to FetchWidth instructions total into
// their pipelines' decoupling buffers.
func (p *Processor) fetchStage() {
	c := p.cycle
	// Only fetchable threads are ranked (policies ignore the rest), so
	// states are built for those alone; stalled cycles build none.
	states := p.stateScratch[:0]
	for _, t := range p.threads {
		if t.fetchable(c) && !p.pipes[t.pipe].FetchBuf.Full() {
			states = append(states, fetch.ThreadState{
				ID:            t.id,
				Fetchable:     true,
				ICount:        t.icount,
				InflightLoads: t.inflightLoads,
				PipeWidth:     p.pipes[t.pipe].Model.Width,
			})
		}
	}
	p.stateScratch = states
	if len(states) == 0 {
		return
	}

	order := p.policy.Order(p.orderScratch[:0], states)
	p.orderScratch = order

	fetched, threadsUsed := 0, 0
	for _, tid := range order {
		if fetched >= p.cfg.Params.FetchWidth || threadsUsed >= p.cfg.Params.FetchMaxThreads {
			break
		}
		t := p.threads[tid]
		b := p.pipes[t.pipe]
		threadsUsed++
		line := t.pc &^ 63
		if t.lineBuf != line {
			res := p.hier.Fetch(t.pc, c)
			p.activity.ICacheReads++
			if res.L1Miss {
				p.activity.L2Accesses++
			}
			if res.L1Miss || res.TLBMiss {
				// The thread's fetch stalls until the line arrives in the
				// fill buffer; the cache port was consumed regardless.
				t.fetchReadyAt = c + uint64(res.Latency)
				t.lineBuf = line
				continue
			}
		}
		fetched += p.fetchThread(t, b, c, p.cfg.Params.FetchWidth-fetched)
	}
	p.stats.TotalFetched += uint64(fetched)
}

// fetchThread fetches up to budget instructions for t into its pipeline's
// buffer, stopping at the cache-line boundary, at a predicted-taken control
// instruction, or when the buffer fills.
func (p *Processor) fetchThread(t *thread, b *pipeline.Backend, c uint64, budget int) int {
	lineEnd := (t.pc &^ 63) + 64
	if space := b.FetchBuf.Space(); budget > space {
		budget = space // hoists the per-instruction Full() check
	}
	n := 0
	for n < budget && t.pc < lineEnd {
		u := p.fetchOne(t, c)
		if u == nil {
			break // wrong-path fetch escaped the program
		}
		if !b.FetchBuf.PushTail(u) {
			panic("core: fetch buffer overflow after Full check")
		}
		p.activity.Fetched++
		p.activity.Pipes[b.Index].FetchBufWrites++
		t.icount++
		if u.Inst.Class.IsLoad() {
			t.inflightLoads++
		}
		t.stats.Fetched++
		if u.Inst.WrongPath {
			t.stats.WrongPath++
		}
		n++
		if u.Inst.Class.IsControl() && u.PredTaken {
			break // fetch does not follow a taken redirect within a cycle
		}
	}
	return n
}

// wrongPathSeedSalt decorrelates wrong-path materializations from the
// correct path.
const wrongPathSeedSalt = 0x57505350 // "WPSP"

// fetchOne produces the uop at t.pc, consuming the correct-path stream or
// synthesizing a wrong-path instance, and runs branch prediction to advance
// the fetch PC.
func (p *Processor) fetchOne(t *thread, c uint64) *pipeline.UOp {
	// The record is reset field-by-field (sparing a duffzero of the
	// ~100-byte Inst that is immediately overwritten) and the instruction
	// written directly into it — one Instruction copy per fetch in total.
	u := p.allocUOp()
	if t.wrongPath {
		st, ok := t.spec.Program.StaticAt(t.pc)
		if !ok {
			// Predicted target escaped the program (e.g. an empty-RAS
			// return prediction): fetch idles until recovery.
			t.wrongPathPC = true
			p.releaseUOp(u)
			return nil
		}
		u.ResetFor(t.id, t.pipe, t.fetchSeq, c)
		u.Inst = trace.Materialize(st, t.spec.Seed^wrongPathSeedSalt, t.spec.DataBase, t.wpCount)
		u.Inst.WrongPath = true
		t.wpCount++
	} else {
		next := t.nextCorrect()
		if next.PC != t.pc {
			panic(fmt.Sprintf("core: thread %d fetch desync: pc=%#x stream=%#x",
				t.id, t.pc, next.PC))
		}
		u.ResetFor(t.id, t.pipe, t.fetchSeq, c)
		u.Inst = *next
		t.advanceCorrect()
	}
	in := &u.Inst
	t.fetchSeq++

	if !in.Class.IsControl() {
		t.pc = in.FallThrough()
		return u
	}

	p.activity.BranchLookups++
	predTaken, predTarget, bubble := p.predictControl(t, in)
	u.PredTaken = predTaken
	u.PredTarget = predTarget
	if !in.WrongPath {
		u.Mispredict = predTaken != in.Taken ||
			(predTaken && in.Taken && predTarget != in.Target)
		if u.Mispredict {
			t.wrongPath = true
		}
	}
	if predTaken {
		t.pc = predTarget
	} else {
		t.pc = in.FallThrough()
	}
	if bubble && t.fetchReadyAt < c+1 {
		t.fetchReadyAt = c + 1 // BTB miss: target computed at decode
	}
	return u
}

// predictControl predicts the direction and target of a control instruction
// at fetch. bubble reports a BTB miss on a predicted-taken direct target
// (the front end loses a cycle computing it).
func (p *Processor) predictControl(t *thread, in *isa.Instruction) (taken bool, target uint64, bubble bool) {
	switch in.Class {
	case isa.Branch:
		taken = p.pred.Predict(t.id, in.PC)
	case isa.Jump, isa.Call, isa.Return:
		taken = true
	}
	if in.Class == isa.Call {
		p.ras[t.id].Push(in.FallThrough())
	}
	if in.Class == isa.Return {
		if tgt, ok := p.ras[t.id].Pop(); ok {
			return true, tgt, false
		}
		// Empty RAS: no target to predict; fall through (mispredicts).
		return true, in.FallThrough(), false
	}
	if !taken {
		return false, 0, false
	}
	if tgt, ok := p.btb.Lookup(in.PC); ok {
		return true, tgt, false
	}
	// BTB miss: decode supplies the (correct, static) direct target one
	// cycle later.
	return true, in.Target, true
}
