package core

import (
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/pipeline"
)

// TestDebugStallDump reproduces the multi-thread stall and dumps machine
// state for diagnosis. Kept as a regression canary: it fails loudly if any
// thread stops committing.
func TestDebugStallDump(t *testing.T) {
	cfg := config.MustParse("3M4")
	p, err := New(cfg, testSpecs(t, "gzip", "vpr", "gcc"), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	last := make([]uint64, 3)
	for c := 0; c < 200_000; c++ {
		p.step()
		anyFinished := false
		for _, th := range p.threads {
			if th.finished {
				anyFinished = true
			}
		}
		if anyFinished {
			return // Run would stop here
		}
		if c%50_000 == 49_999 {
			stuck := false
			for i, th := range p.threads {
				if th.committed == last[i] && !th.finished {
					stuck = true
				}
				last[i] = th.committed
			}
			if stuck {
				for _, th := range p.threads {
					var headStage pipeline.Stage = 99
					var headPC uint64
					if u, ok := th.rob.Head(); ok {
						headStage = u.Stage
						headPC = u.Inst.PC
					}
					t.Logf("thread %d (%s): committed=%d icount=%d inflight=%d rob=%d robHead=%v pc=%#x headPC=%#x wrongPath=%v wpPC=%v flush=%v fetchReady=%d cursor=%d/%d",
						th.id, th.spec.Name, th.committed, th.icount, th.inflightLoads,
						th.rob.Len(), headStage, th.pc, headPC, th.wrongPath, th.wrongPathPC,
						th.flushStalled != nil, th.fetchReadyAt, th.cursor, len(th.buf))
					b := p.pipes[th.pipe]
					t.Logf("  pipe %d: buf=%d/%d IQ=%d/%d LQ=%d/%d FQ=%d/%d rfFree=%d",
						b.Index, b.FetchBuf.Len(), b.FetchBuf.Cap(),
						b.IQ.Len(), b.IQ.Cap(), b.LQ.Len(), b.LQ.Cap(),
						b.FQ.Len(), b.FQ.Cap(), p.rf.FreeCount())
					if u, ok := th.rob.Head(); ok {
						t.Logf("  head uop: %v stage=%v issueAt=%d done=%d srcs=%v ready=%v",
							&u.Inst, u.Stage, u.IssueAt, u.DoneCycle, u.Src, u.Ready(p.rf))
					}
				}
				t.Fatalf("threads stalled at cycle %d", p.cycle)
			}
		}
	}
}
