package core

import (
	"fmt"
	"math"

	"hdsmt/internal/branch"
	"hdsmt/internal/cache"
	"hdsmt/internal/isa"
	"hdsmt/internal/pipeline"
	"hdsmt/internal/trace"
)

// Sampled execution (SMARTS-style systematic sampling): instead of
// simulating every instruction through the detailed pipeline, RunSampled
// simulates short detailed intervals at a fixed period and fast-forwards
// functionally between them. The functional path retires instructions
// architecturally — advancing the trace stream and warming the branch
// predictor, BTB, RAS, caches and TLBs — without modeling the pipeline, so
// it costs a fraction of a detailed cycle per instruction. Per-interval
// IPCs aggregate into a point estimate with a CLT-based 95% confidence
// interval, making the accuracy of the cheap run a first-class output.

// SampleParams configures sampled execution. All counts are per-thread
// instructions.
type SampleParams struct {
	// Period is the sampling unit length: each unit advances every thread
	// exactly Period instructions, of which Warm+Detail run through the
	// detailed pipeline and the rest fast-forward functionally.
	Period uint64
	// Detail is the measured detailed-interval length. Each unit's
	// measurement stops when the first thread retires Detail instructions
	// past its warm-up (the paper's stopping rule, applied per interval).
	Detail uint64
	// Warm is the detailed warm-up run before each measured interval to
	// refill the pipeline, ROB and queues after a functional skip; it is
	// simulated in detail but not measured.
	Warm uint64
}

// Enabled reports whether the params request sampled execution.
func (sp SampleParams) Enabled() bool { return sp.Period > 0 }

// Validate checks internal consistency.
func (sp SampleParams) Validate() error {
	switch {
	case sp.Period == 0:
		return fmt.Errorf("core: sample period must be positive")
	case sp.Detail == 0:
		return fmt.Errorf("core: sample detail length must be positive")
	case sp.Warm+sp.Detail > sp.Period/2:
		return fmt.Errorf("core: detailed portion %d+%d must be at most half the period %d",
			sp.Warm, sp.Detail, sp.Period)
	}
	return nil
}

// DefaultSampleParams is the tuned operating point for the paper's
// workloads: 3% of the stream in detail, the rest fast-forwarded.
// The windows are long (a few thousand instructions) because short windows
// cannot amortize the post-drain transient — the drain squashes in-flight
// misses, so each window's first memory round trips are unrepresentative.
func DefaultSampleParams() SampleParams {
	return SampleParams{Period: 100_000, Detail: 2_000, Warm: 2_000}
}

// SampleInterval is one measured detailed interval.
type SampleInterval struct {
	Cycles    uint64
	Committed uint64 // total across threads
	IPC       float64
	Activity  Activity
}

// SampleSummary describes a sampled run: the sampling parameters, the
// per-interval measurements, and the CLT aggregate. IPCMoE is the 95%
// margin of error (z=1.96) of the per-interval IPC mean, floored at
// moeFloorFrac of the mean to account for systematic warm-up bias the
// sampling distribution cannot see.
type SampleSummary struct {
	Period uint64
	Detail uint64
	Warm   uint64

	Units   int
	Covered uint64 // leader-thread instructions advanced (units * Period)
	// IPCMean is the ratio estimate ΣCommitted/ΣCycles over the measured
	// windows (matching the exact run's IPC definition); IPCStdDev the
	// linearized per-interval deviation whose /√Units scaling gives the
	// estimator's standard error; IPCMoE the reported 95% margin.
	IPCMean   float64
	IPCStdDev float64
	IPCMoE    float64

	Intervals []SampleInterval
}

// moeFloorFrac is the relative floor applied to reported margins of error:
// CLT intervals only capture sampling noise, not the small systematic bias
// of truncated pipeline warm-up, so arbitrarily tight intervals from
// low-variance workloads would be dishonest.
const moeFloorFrac = 0.015

// z95 is the two-sided 95% normal quantile.
const z95 = 1.96

// RunSampled estimates a run of maxPerThread measured instructions using
// systematic sampling: ceil(maxPerThread/Detail) units, each measuring one
// detailed interval and fast-forwarding the remainder of the period
// functionally, covering units*Period instructions of the leading thread's
// stream — the same region an exact Run over that budget executes, cold
// start and all, so the estimate targets the exact run's IPC rather than
// some idealized steady state. When the processor was built WithWarmup(n),
// the first n instructions of every thread fast-forward functionally
// before the first unit. Like Run, RunSampled may be called once per
// Processor.
func (p *Processor) RunSampled(maxPerThread uint64, sp SampleParams) (Results, error) {
	if maxPerThread == 0 {
		return Results{}, fmt.Errorf("core: zero instruction budget")
	}
	if err := sp.Validate(); err != nil {
		return Results{}, err
	}
	units := int((maxPerThread + sp.Detail - 1) / sp.Detail)
	if units < 2 {
		return Results{}, fmt.Errorf("core: sampled run needs at least 2 intervals (budget %d, detail %d)", maxPerThread, sp.Detail)
	}

	// Pre-size everything the unit loop touches so the steady state stays
	// allocation-free (the uop pool and event rings are reused across
	// intervals by construction — they belong to the Processor).
	np := len(p.pipes)
	intervals := make([]SampleInterval, 0, units)
	activityBacking := make([]PipeActivity, units*np)
	unitBase := make([]uint64, len(p.threads))
	skip := make([]uint64, len(p.threads))
	p.sampleCommitted = make([]uint64, len(p.threads))
	p.sampleScratch = make([]uint64, len(p.threads))
	p.sampleWarmScratch = make([]uint64, len(p.threads))
	p.samplePipeScratch = make([]PipeActivity, np)
	p.buildSampleCtl()

	if p.warmup > 0 {
		for i := range skip {
			skip[i] = p.warmup
		}
		p.fastSkip(skip)
		p.alignFetch()
	}

	for u := 0; u < units; u++ {
		iv, err := p.runSampleUnit(sp, activityBacking[u*np:u*np:(u+1)*np], unitBase, skip)
		if err != nil {
			return Results{}, fmt.Errorf("core: sampling unit %d: %w", u, err)
		}
		intervals = append(intervals, iv)
	}
	return p.sampledResults(sp, intervals), nil
}

// runSampleUnit runs one sampling unit: a detailed interval followed by a
// drain and the functional skip to the next period boundary. unitBase and
// skip are caller-owned scratch (one slot per thread).
func (p *Processor) runSampleUnit(sp SampleParams, pipeBacking []PipeActivity, unitBase, skip []uint64) (SampleInterval, error) {
	for i, t := range p.threads {
		unitBase[i] = t.committed
	}
	iv, err := p.sampleDetailed(sp, pipeBacking)
	if err != nil {
		return iv, err
	}
	p.drainInflight()
	// Fast-forward each thread proportionally to its measured rate: the
	// unit's leader advances exactly Period, a thread that committed half
	// as much advances half as far. Co-running threads progress at very
	// different natural rates (the exact run stops when the FIRST thread
	// exhausts the budget), so a lockstep skip would oversample slow
	// threads' streams and distort the mix the detailed windows see.
	var lead uint64
	for i, t := range p.threads {
		if d := t.committed - unitBase[i]; d > lead {
			lead = d
		}
	}
	// The effective period is jittered deterministically in [P/2, 3P/2) —
	// mean P — so window positions do not alias with periodic program phases
	// (plain systematic sampling hits the same loop phase every unit when
	// the phase length divides the period).
	period := sp.Period/2 + unitHash(p.sampleUnit)%sp.Period
	for i, t := range p.threads {
		done := t.committed - unitBase[i]
		if end := unitBase[i] + period*done/lead; end > t.committed {
			skip[i] = end - t.committed
		} else {
			skip[i] = 0
		}
	}
	p.fastSkip(skip)
	p.alignFetch()
	return iv, nil
}

// funcWarmCap bounds the functionally warmed tail of a skip (leader-thread
// instructions; co-runners warm proportional slices). Warming exists to
// restore recency order in the shared structures before the next detailed
// window, and the structures are small enough that the most recent ~16K
// instructions decide nearly every replacement the window observes; the
// stretch before the tail advances architectural state only, at a fraction
// of the warming cost. The aging is honest: the skip still advances the
// clock, so lines the previous window touched grow old by the full skip.
const funcWarmCap = 16_384

// fastSkip advances every thread by counts[i] instructions. Skips up to
// funcWarmCap run entirely through the functional-warming path; for longer
// skips only the proportional tail warms and the rest advances trace state
// alone (Stream.Advance).
func (p *Processor) fastSkip(counts []uint64) {
	var lead uint64
	for _, n := range counts {
		if n > lead {
			lead = n
		}
	}
	if lead <= funcWarmCap {
		p.warmInterleaved(counts)
		return
	}
	warm := p.sampleWarmScratch
	for i, t := range p.threads {
		w := counts[i] * funcWarmCap / lead
		p.skipThread(t, counts[i]-w)
		warm[i] = w
	}
	p.warmInterleaved(warm)
}

// buildSampleCtl builds the per-thread control observers that keep the
// branch structures warm through a bulk skip (one closure per thread,
// built once per run so the unit loop stays allocation-free).
func (p *Processor) buildSampleCtl() {
	p.sampleCtl = make([]trace.ControlFunc, len(p.threads))
	for i, t := range p.threads {
		id := t.id
		p.sampleCtl[i] = func(class isa.Class, pc, target uint64, taken bool) {
			switch class {
			case isa.Branch:
				p.pred.Resolve(id, pc, taken)
			case isa.Call:
				p.ras[id].Push(pc + isa.InstrBytes)
			case isa.Return:
				p.ras[id].Pop()
			}
			if taken {
				p.btb.Update(pc, target)
			}
		}
	}
}

// skipThread advances t by n instructions architecturally — trace state,
// commit count and replay buffer. The branch structures (predictor, BTB,
// RAS) stay continuously warm through the skip: direction prediction
// converges over hundreds of thousands of instructions, far too slowly for
// a bounded warming tail to restore. Caches and TLBs are NOT touched —
// their recency state is rebuilt by the warmed tail — so the skip needs no
// effective addresses and the trace stream advances in bulk without
// materializing anything. The clock does NOT advance across the skipped
// stretch: in continuous execution the resident set is re-touched
// throughout the period and stays young, so carrying the pre-skip contents
// forward un-aged approximates it far better than aging them out of the
// large structures (which leaves memory-bound threads artificially cold at
// every window). Buffered instructions the detailed window already fetched
// ahead are consumed first.
func (p *Processor) skipThread(t *thread, n uint64) {
	if n == 0 {
		return
	}
	ctl := p.sampleCtl[t.id]
	t.rewindTo(t.committed)
	for n > 0 && t.cursor < len(t.buf) {
		in := &t.buf[t.cursor]
		if in.Class.IsControl() {
			ctl(in.Class, in.PC, in.Target, in.Taken)
		}
		seq := in.Seq
		t.cursor++
		t.committed++
		t.retireTrim(seq)
		n--
	}
	if n == 0 {
		return
	}
	t.stream.Advance(n, ctl)
	t.committed += n
	t.buf = t.buf[:0]
	t.bufBase = t.committed
	t.cursor = 0
}

// warmChunk is the sweep granularity of the interleaved functional skip.
const warmChunk = 256

// unitHash mixes a sampling-unit index into a deterministic pseudo-random
// value (splitmix64 finalizer) for period jitter.
func unitHash(u uint64) uint64 {
	x := (u + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// warmInterleaved fast-forwards every thread by counts[i] instructions,
// interleaving the threads in proportional chunks so shared recency state
// (caches, TLBs, BTB) sees the accesses in an order resembling concurrent
// execution rather than one thread's entire skip before the next's.
func (p *Processor) warmInterleaved(counts []uint64) {
	var lead uint64
	for _, n := range counts {
		if n > lead {
			lead = n
		}
	}
	if lead == 0 {
		return
	}
	progress := p.sampleScratch
	for i := range progress {
		progress[i] = 0
	}
	sweeps := (lead + warmChunk - 1) / warmChunk
	for s := uint64(1); s <= sweeps; s++ {
		for i, t := range p.threads {
			goal := counts[i] * s / sweeps
			if goal > progress[i] {
				p.warmThread(t, goal-progress[i])
				progress[i] = goal
			}
		}
	}
}

// sampleDetailed runs one detailed interval: an unmeasured warm-up until
// every thread retires sp.Warm instructions, then a measured window that
// stops when the first thread retires sp.Detail instructions. pipeBacking
// receives the interval's per-pipe activity deltas (caller-owned, so the
// loop allocates nothing).
func (p *Processor) sampleDetailed(sp SampleParams, pipeBacking []PipeActivity) (SampleInterval, error) {
	cycleCap := p.cycle + (sp.Warm+sp.Detail)*600*uint64(len(p.threads)) + 1_000_000
	scratch := p.sampleScratch
	if sp.Warm > 0 {
		// Like the measured window, warm-up follows the leader: it ends when
		// the first thread retires sp.Warm instructions. Waiting for every
		// thread would stall the interval on memory-bound threads and force
		// the very lockstep progress the proportional skip avoids. The cycle
		// floor covers a few full memory round trips: the drain squashed
		// every in-flight miss, so without it memory-bound threads would
		// start every measured window at the head of a fresh full-latency
		// stall — frozen and exerting no shared-resource pressure — instead
		// of mid-rhythm as in continuous execution.
		hp := p.hier.Params
		rt := uint64(hp.L1HitLatency + hp.L1MissPenalty + hp.L2Latency + hp.MemLatency)
		// Deterministic per-unit jitter breaks phase-locking between the
		// sampling cadence and periodic stall rhythms (a memory-bound
		// thread's miss/burst cycle would otherwise sit at the same phase in
		// every measured window).
		jitter := (p.sampleUnit * 2654435761) % rt
		floor := p.cycle + 3*rt + jitter
		for i, t := range p.threads {
			scratch[i] = t.committed + sp.Warm
		}
		for {
			p.step()
			warm := p.cycle >= floor
			if warm {
				warm = false
				for i, t := range p.threads {
					if t.committed >= scratch[i] {
						warm = true
						break
					}
				}
			}
			if warm {
				break
			}
			if p.cycle > cycleCap {
				return SampleInterval{}, fmt.Errorf("interval warm-up of %d instructions did not finish within the cycle cap", sp.Warm)
			}
		}
	}

	startCycle := p.cycle
	baseActivity := p.activity
	baseActivity.Pipes = p.samplePipeScratch[:len(p.pipes)]
	copy(baseActivity.Pipes, p.activity.Pipes)
	for i, t := range p.threads {
		scratch[i] = t.committed
		t.target = t.committed + sp.Detail
	}
	// The window ends when the first thread retires sp.Detail instructions,
	// but never before a couple of memory round trips have elapsed: a window
	// shorter than a co-runner's stall/burst cycle would sample its commits
	// in unrepresentative fractions.
	hp := p.hier.Params
	windowFloor := startCycle + 2*uint64(hp.L1HitLatency+hp.L1MissPenalty+hp.L2Latency+hp.MemLatency)
	disarmed := false
	for {
		p.step()
		if disarmed {
			if p.cycle >= windowFloor {
				break
			}
		} else if p.anyFinished {
			if p.cycle >= windowFloor {
				break
			}
			// Disarm every target and keep measuring until the floor.
			p.anyFinished = false
			for _, t := range p.threads {
				t.finished = false
				t.target = 0
			}
			disarmed = true
		}
		if p.cycle > cycleCap {
			return SampleInterval{}, fmt.Errorf("no thread retired %d instructions within the cycle cap: simulator stall", sp.Detail)
		}
	}
	p.anyFinished = false
	p.sampleUnit++
	var committed uint64
	for i, t := range p.threads {
		committed += t.committed - scratch[i]
		p.sampleCommitted[i] += t.committed - scratch[i]
		t.target = 0
		t.finished = false
	}

	cycles := p.cycle - startCycle
	return SampleInterval{
		Cycles:    cycles,
		Committed: committed,
		IPC:       float64(committed) / float64(cycles),
		Activity:  p.activity.subInto(baseActivity, pipeBacking),
	}, nil
}

// drainInflight squashes every in-flight instruction and empties the event
// rings, returning the pipeline to the architectural state at the last
// commit. The uop pool absorbs every record — nothing is reallocated for
// the next interval. Rename maps and the register file return to their
// empty/architectural state through the ordinary squash path, so their
// invariants hold by construction.
func (p *Processor) drainInflight() {
	for _, t := range p.threads {
		p.squashAllOf(t)
		t.flushStalled = nil
		t.wrongPath = false
		t.wrongPathPC = false
		t.lineBuf = 0
		t.fetchReadyAt = 0
	}
	for _, b := range p.pipes {
		for {
			u, ok := b.FetchBuf.PopHead()
			if !ok {
				break
			}
			if u.Stage != pipeline.StageSquashed {
				panic(fmt.Sprintf("core: draining fetch buffer found stage %v", u.Stage))
			}
			p.releaseUOp(u)
		}
	}
	for s := 0; s < ringSize; s++ {
		for _, u := range p.completions[s] {
			// Issued uops stay referenced only by their completion entry
			// (squashUOp leaves them to be recycled here); flushAt entries
			// alias completions entries and must not double-release.
			if u.Stage != pipeline.StageSquashed {
				panic(fmt.Sprintf("core: draining completions found stage %v", u.Stage))
			}
			p.releaseUOp(u)
		}
		p.completions[s] = p.completions[s][:0]
		p.flushAt[s] = p.flushAt[s][:0]
		p.issueTimers[s] = p.issueTimers[s][:0]
	}
	// The reference stepping path polls queues directly and lets readyCount
	// drift (it is an optimized-path fast-out only), so the invariant check
	// applies to the optimized path; after a drain the queues are empty, so
	// zero is the true count on both paths.
	if !p.reference && (p.readyCount != 0 || p.doneCount != 0) {
		panic(fmt.Sprintf("core: nonzero scheduler counts after drain (ready=%d done=%d)", p.readyCount, p.doneCount))
	}
	p.readyCount, p.doneCount = 0, 0
}

// alignFetch repositions every thread's fetch engine at the oldest
// uncommitted correct-path instruction (the same realignment a dynamic
// remap performs on attach).
func (p *Processor) alignFetch() {
	for _, t := range p.threads {
		t.rewindTo(t.committed)
		t.pc = t.nextCorrect().PC
	}
}

// warmThread retires n instructions of t functionally: the trace stream
// advances and the shared predictor, BTB, RAS and cache hierarchy are
// updated per instruction, but no uop ever enters the pipeline. This is
// the fast-forward path between detailed intervals; it shares the thread's
// replay buffer, so an interval boundary needs no stream surgery.
func (p *Processor) warmThread(t *thread, n uint64) {
	// Fetch may have run ahead of (or diverged from) the commit point; the
	// functional path resumes exactly at the oldest uncommitted instruction.
	t.rewindTo(t.committed)
	c := p.cycle
	line := uint64(math.MaxUint64)
	for k := uint64(0); k < n; k++ {
		// Advance time one cycle per instruction: replacement in the caches,
		// TLBs and BTB is recency-based, so warming with a frozen clock would
		// give every warmed line the same stamp and corrupt the LRU order the
		// detailed interval then sees.
		c++
		in := t.nextCorrect()
		if l := in.PC &^ 63; l != line {
			p.hier.Fetch(in.PC, c)
			line = l
		}
		switch in.Class {
		case isa.Branch:
			p.pred.Resolve(t.id, in.PC, in.Taken)
		case isa.Call:
			p.ras[t.id].Push(in.FallThrough())
		case isa.Return:
			p.ras[t.id].Pop()
		case isa.Load:
			p.hier.Load(in.EffAddr, c)
		case isa.Store:
			p.hier.Store(in.EffAddr, c)
		}
		if in.Class.IsControl() && in.Taken {
			p.btb.Update(in.PC, in.Target)
		}
		seq := in.Seq
		t.advanceCorrect()
		t.committed++
		t.retireTrim(seq)
	}
	p.cycle = c
}

// sampledResults aggregates the measured intervals into Results: totals
// over the measured windows plus the Sampled summary. The point estimate is
// the ratio of sums (total committed / total cycles across the sampled
// windows), matching the exact run's definition of IPC; the margin of error
// comes from the standard linearization of the ratio estimator, so the
// interval covers the ratio, not the (Jensen-biased) mean of window IPCs.
func (p *Processor) sampledResults(sp SampleParams, intervals []SampleInterval) Results {
	r := Results{
		Config: p.cfg.Name,
		Policy: p.policy.Name(),
	}
	mean, sd := ratioStats(intervals)
	moe := z95 * sd / math.Sqrt(float64(len(intervals)))
	if floor := moeFloorFrac * mean; moe < floor {
		moe = floor
	}
	for _, iv := range intervals {
		r.Cycles += iv.Cycles
		addInto(&r.Activity, iv.Activity)
	}
	for i := range p.threads {
		c := p.sampleCommitted[i]
		r.Committed = append(r.Committed, c)
		r.PerThreadIPC = append(r.PerThreadIPC, float64(c)/float64(r.Cycles))
	}
	r.IPC = mean
	r.Sampled = &SampleSummary{
		Period:    sp.Period,
		Detail:    sp.Detail,
		Warm:      sp.Warm,
		Units:     len(intervals),
		Covered:   uint64(len(intervals)) * sp.Period,
		IPCMean:   mean,
		IPCStdDev: sd,
		IPCMoE:    moe,
		Intervals: intervals,
	}
	return r
}

// ratioStats returns the ratio estimate R = ΣC/ΣY (committed over cycles)
// and the linearized per-interval standard deviation
// sqrt(Σ(Cᵢ−R·Yᵢ)²/(n−1))/ȳ, whose /√n scaling is the ratio estimator's
// standard error (Taylor linearization, the survey-sampling standard).
func ratioStats(intervals []SampleInterval) (ratio, sd float64) {
	n := float64(len(intervals))
	var sumC, sumY float64
	for _, iv := range intervals {
		sumC += float64(iv.Committed)
		sumY += float64(iv.Cycles)
	}
	ratio = sumC / sumY
	if len(intervals) < 2 {
		return ratio, 0
	}
	var ss float64
	for _, iv := range intervals {
		d := float64(iv.Committed) - ratio*float64(iv.Cycles)
		ss += d * d
	}
	ybar := sumY / n
	return ratio, math.Sqrt(ss/(n-1)) / ybar
}

// ------------------------------------------------------------ checkpoint --

// Checkpoint is the serialized functional-warming state at a sampling
// interval boundary: branch tables (perceptron, BTB, per-thread RAS) and
// the cache/TLB hierarchy. The sampler itself warms these structures in
// place — a checkpoint is the portable form, restoring bit-identically for
// tests, debugging, and future distributed sampling.
type Checkpoint struct {
	Pred *branch.PredictorState
	BTB  *branch.BTBState
	RAS  []*branch.RASState
	Hier *cache.HierarchyState
}

// Checkpoint captures the processor's functional-warming state.
func (p *Processor) Checkpoint() *Checkpoint {
	c := &Checkpoint{
		Pred: p.pred.Snapshot(),
		BTB:  p.btb.Snapshot(),
		Hier: p.hier.Snapshot(),
	}
	for _, r := range p.ras {
		c.RAS = append(c.RAS, r.Snapshot())
	}
	return c
}

// RestoreCheckpoint overwrites the processor's functional-warming state
// with a previously captured checkpoint.
func (p *Processor) RestoreCheckpoint(c *Checkpoint) {
	if len(c.RAS) != len(p.ras) {
		panic(fmt.Sprintf("core: checkpoint has %d RAS states for %d threads", len(c.RAS), len(p.ras)))
	}
	p.pred.Restore(c.Pred)
	p.btb.Restore(c.BTB)
	for i, r := range p.ras {
		r.Restore(c.RAS[i])
	}
	p.hier.Restore(c.Hier)
}

// MarshalBinary encodes the checkpoint deterministically: each component
// in declaration order with a little-endian length prefix.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	var dst []byte
	parts := []interface{ MarshalBinary() ([]byte, error) }{c.Pred, c.BTB}
	for _, r := range c.RAS {
		parts = append(parts, r)
	}
	parts = append(parts, c.Hier)
	dst = appendUint32(dst, uint32(len(c.RAS)))
	for _, m := range parts {
		b, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		dst = appendUint32(dst, uint32(len(b)))
		dst = append(dst, b...)
	}
	return dst, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary.
func (c *Checkpoint) UnmarshalBinary(src []byte) error {
	if len(src) < 4 {
		return fmt.Errorf("core: checkpoint truncated")
	}
	nras := int(uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24)
	src = src[4:]
	c.Pred = &branch.PredictorState{}
	c.BTB = &branch.BTBState{}
	c.Hier = &cache.HierarchyState{}
	c.RAS = make([]*branch.RASState, nras)
	parts := []interface{ UnmarshalBinary([]byte) error }{c.Pred, c.BTB}
	for i := range c.RAS {
		c.RAS[i] = &branch.RASState{}
		parts = append(parts, c.RAS[i])
	}
	parts = append(parts, c.Hier)
	for _, u := range parts {
		if len(src) < 4 {
			return fmt.Errorf("core: checkpoint component truncated")
		}
		n := int(uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24)
		src = src[4:]
		if len(src) < n {
			return fmt.Errorf("core: checkpoint component truncated")
		}
		if err := u.UnmarshalBinary(src[:n]); err != nil {
			return err
		}
		src = src[n:]
	}
	if len(src) != 0 {
		return fmt.Errorf("core: checkpoint has %d trailing bytes", len(src))
	}
	return nil
}

func appendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
