package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"hdsmt/internal/config"
)

// testSampleParams is the operating point the core tests pin: 40% of each
// period in detail (warm included), 20 units per 40k-instruction budget.
// The tests trade speedup for resolution — windows long enough to be
// representative of their periods, enough units for tight intervals; the
// BENCH harness tunes the production point for speedup instead.
var testSampleParams = SampleParams{Period: 10_000, Detail: 2_000, Warm: 2_000}

// runSampledPair runs the same workload twice from the same cold start:
// exactly over the sampled run's covered region (units periods of the
// leading thread), and sampled. Both runs include the cold-start transient
// — the sampled estimate targets the exact run, not an idealized steady
// state — so the comparison needs no warm-up alignment between mechanisms
// that advance co-running threads differently.
func runSampledPair(t *testing.T, cfgName string, mapping []int, budget uint64, sp SampleParams, names ...string) (exact, sampled Results) {
	t.Helper()
	units := (budget + sp.Detail - 1) / sp.Detail

	build := func() *Processor {
		p, err := New(config.MustParse(cfgName), testSpecs(t, names...), mapping)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	var err error
	exact, err = build().Run(units * sp.Period)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err = build().RunSampled(budget, sp)
	if err != nil {
		t.Fatal(err)
	}
	return exact, sampled
}

// checkWithinCI asserts the sampled estimate covers the exact IPC within
// its own reported interval, and that the error meets the 3% target.
func checkWithinCI(t *testing.T, label string, exact, sampled Results) {
	t.Helper()
	s := sampled.Sampled
	if s == nil {
		t.Fatalf("%s: sampled run carries no SampleSummary", label)
	}
	if s.Units < 2 || s.IPCMoE <= 0 {
		t.Fatalf("%s: degenerate summary %+v", label, s)
	}
	err := math.Abs(sampled.IPC - exact.IPC)
	relErr := err / exact.IPC
	t.Logf("%s: exact IPC %.4f, sampled %.4f ± %.4f (%d units, rel err %.2f%%)",
		label, exact.IPC, sampled.IPC, s.IPCMoE, s.Units, 100*relErr)
	if err > s.IPCMoE {
		t.Errorf("%s: sampled IPC %.4f misses exact %.4f by %.4f, outside its own ±%.4f interval",
			label, sampled.IPC, exact.IPC, err, s.IPCMoE)
	}
	// Sanity cap only: at the test scale (13–20 units) the statistical error
	// is several percent by construction; the ≤3%% acceptance target is
	// pinned by the BENCH harness at production unit counts.
	if relErr > 0.15 {
		t.Errorf("%s: relative IPC error %.2f%% exceeds the 15%% sanity cap", label, 100*relErr)
	}
}

// TestSampledEquivalenceBasket pins the tentpole invariant on the
// ILP/MEM/MIX basket: sampled estimates fall within their own reported
// confidence intervals of the exact path, at ≤3% error.
func TestSampledEquivalenceBasket(t *testing.T) {
	cases := []struct {
		label   string
		cfg     string
		mapping []int
		names   []string
	}{
		{"ILP/M8", "M8", []int{0, 0}, []string{"gzip", "bzip2"}},
		{"MEM/M8", "M8", []int{0, 0}, []string{"mcf", "parser"}},
		{"MIX/M8", "M8", []int{0, 0}, []string{"gzip", "mcf"}},
		{"ILP/2M4+2M2", "2M4+2M2", []int{0, 1}, []string{"gzip", "bzip2"}},
		{"MEM/2M4+2M2", "2M4+2M2", []int{0, 1}, []string{"mcf", "parser"}},
		{"MIX/2M4+2M2", "2M4+2M2", []int{0, 1}, []string{"gzip", "mcf"}},
	}
	for _, tc := range cases {
		exact, sampled := runSampledPair(t, tc.cfg, tc.mapping, 40_000, testSampleParams, tc.names...)
		checkWithinCI(t, tc.label, exact, sampled)
	}
}

// TestSampledEquivalenceRandomized drives the same invariant through
// randomized machines, workload mixes, mappings, and budgets, over fixed
// seeds so failures reproduce.
func TestSampledEquivalenceRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sampled-equivalence sweep is a tier-2 test")
	}
	configs := []string{"M8", "2M4", "2M4+2M2", "4M2"}
	benches := []string{"gzip", "mcf", "gcc", "twolf", "gap", "vortex", "vpr", "crafty", "eon", "parser"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := config.MustParse(configs[rng.Intn(len(configs))])
		n := 1 + rng.Intn(3)
		cfg = cfg.ForThreads(n)
		if cfg.TotalContexts() < n {
			n = cfg.TotalContexts()
		}
		names := make([]string, n)
		for i := range names {
			names[i] = benches[rng.Intn(len(benches))]
		}
		used := make([]int, len(cfg.Pipelines))
		mapping := make([]int, n)
		for i := range mapping {
			for {
				pi := rng.Intn(len(cfg.Pipelines))
				if used[pi] < cfg.Pipelines[pi].Contexts {
					used[pi]++
					mapping[i] = pi
					break
				}
			}
		}
		budget := uint64(24_000 + rng.Intn(16_000))
		exact, sampled := runSampledPair(t, cfg.Name, mapping, budget, testSampleParams, names...)
		checkWithinCI(t, cfg.Name, exact, sampled)
	}
}

// TestSampledDeterminism: fixed seed, identical results — the invariant
// every BENCH artifact rests on.
func TestSampledDeterminism(t *testing.T) {
	run := func() Results {
		p, err := New(config.MustParse("2M4+2M2"), testSpecs(t, "gzip", "mcf"), []int{0, 1}, WithWarmup(1_000))
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.RunSampled(8_000, testSampleParams)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sampled runs diverge:\n%+v\n%+v", a, b)
	}
}

// TestSampleParamsValidate pins the parameter contract.
func TestSampleParamsValidate(t *testing.T) {
	for _, sp := range []SampleParams{
		{Period: 0, Detail: 100, Warm: 100},
		{Period: 1_000, Detail: 0, Warm: 100},
		{Period: 1_000, Detail: 400, Warm: 200}, // detailed portion > half
	} {
		if err := sp.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", sp)
		}
	}
	if err := DefaultSampleParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if !DefaultSampleParams().Enabled() || (SampleParams{}).Enabled() {
		t.Error("Enabled misreports")
	}
}

// TestSampledSteadyStateAllocs asserts the sampling-unit loop — detailed
// interval, pipeline drain, functional fast-forward — reuses the uop pool,
// event rings, and every scratch buffer: zero allocations per unit once
// warm.
func TestSampledSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is a tier-2 test")
	}
	p, err := New(config.MustParse("2M4+2M2"), testSpecs(t, "gzip", "mcf", "gcc", "twolf"), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sp := testSampleParams
	np := len(p.pipes)
	p.sampleScratch = make([]uint64, len(p.threads))
	p.sampleWarmScratch = make([]uint64, len(p.threads))
	p.samplePipeScratch = make([]PipeActivity, np)
	p.sampleCommitted = make([]uint64, len(p.threads))
	p.buildSampleCtl()
	backing := make([]PipeActivity, np)
	unitBase := make([]uint64, len(p.threads))
	skip := make([]uint64, len(p.threads))
	runUnit := func() {
		if _, err := p.runSampleUnit(sp, backing[:0:np], unitBase, skip); err != nil {
			t.Fatal(err)
		}
	}
	// Warm until replay buffers, waiter lists, ring slots, and pool
	// capacities reach their high-water marks (period jitter means rare
	// capacity-growth events trail off over tens of units; the run is
	// deterministic, so so is the settling point).
	for i := 0; i < 512; i++ {
		runUnit()
	}
	avg := testing.AllocsPerRun(5, runUnit)
	if avg > 0.01 {
		t.Errorf("sampling unit allocates %.3f times in steady state, want 0", avg)
	}
}

// TestCheckpointRoundTrip: the functional-warming state (branch tables,
// cache/TLB arrays) serialized into an interval checkpoint restores
// bit-identically into a fresh processor of the same shape.
func TestCheckpointRoundTrip(t *testing.T) {
	build := func() *Processor {
		p, err := New(config.MustParse("2M4+2M2"), testSpecs(t, "gzip", "mcf"), []int{0, 1}, WithWarmup(500))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	warmed := build()
	if _, err := warmed.RunSampled(4_000, testSampleParams); err != nil {
		t.Fatal(err)
	}
	ck := warmed.Checkpoint()
	enc, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var decoded Checkpoint
	if err := decoded.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, &decoded) {
		t.Fatal("decoded checkpoint differs from the original struct")
	}

	fresh := build()
	fresh.RestoreCheckpoint(&decoded)
	enc2, err := fresh.Checkpoint().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("restored state re-encodes differently: %d vs %d bytes", len(enc), len(enc2))
	}

	// Corrupted/truncated encodings must error, not panic.
	if err := new(Checkpoint).UnmarshalBinary(enc[:len(enc)/2]); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
	if err := new(Checkpoint).UnmarshalBinary(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("over-long checkpoint decoded without error")
	}
}

// TestSampledOnReferencePath: sampling composes with the reference
// stepping path (the detailed intervals just step naively).
func TestSampledOnReferencePath(t *testing.T) {
	p, err := New(config.MustParse("M8"), testSpecs(t, "gzip", "mcf"), []int{0, 0}, WithReferenceStepping())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(config.MustParse("M8"), testSpecs(t, "gzip", "mcf"), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.RunSampled(4_000, testSampleParams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.RunSampled(4_000, testSampleParams)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sampled results diverge between stepping paths:\nreference: %+v\noptimized: %+v", a, b)
	}
}

// TestSampledRejectsBadBudget pins the error paths.
func TestSampledRejectsBadBudget(t *testing.T) {
	p, err := New(config.MustParse("M8"), testSpecs(t, "gzip"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunSampled(0, testSampleParams); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := p.RunSampled(1_000, testSampleParams); err == nil {
		t.Error("single-interval budget accepted (no variance estimate possible)")
	}
	if _, err := p.RunSampled(2_000, SampleParams{Period: 100, Detail: 300, Warm: 0}); err == nil {
		t.Error("detail longer than period accepted")
	}
}
