package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/fetch"
)

// runBoth runs the same simulation twice — once on the optimized stepping
// path (event-driven wakeup + idle-cycle fast-forward) and once on the
// naive reference path — and returns both outcomes.
func runBoth(t *testing.T, cfgName string, mapping []int, budget uint64, opts []Option, names ...string) (opt, ref Results, optStats, refStats Stats) {
	t.Helper()
	run := func(extra ...Option) (Results, Stats) {
		p, err := New(config.MustParse(cfgName), testSpecs(t, names...), mapping, append(append([]Option{}, opts...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(budget)
		if err != nil {
			t.Fatal(err)
		}
		return r, p.GlobalStats()
	}
	opt, optStats = run()
	ref, refStats = run(WithReferenceStepping())
	return opt, ref, optStats, refStats
}

// TestSteppingEquivalence pins the tentpole invariant: the event-driven
// wakeup scheduler and the idle-cycle fast-forward must be bit-identical
// to per-cycle polling across machine models, fetch policies (FLUSH
// mechanism on and off), and thread counts.
func TestSteppingEquivalence(t *testing.T) {
	cases := []struct {
		cfg     string
		mapping []int
		opts    []Option
		names   []string
	}{
		// Monolithic baseline: FLUSH mechanism active, mcf stalls hard.
		{"M8", []int{0, 0}, nil, []string{"gzip", "mcf"}},
		// Single memory-bound thread: the fast-forward stress case.
		{"M8", []int{0}, nil, []string{"mcf"}},
		// Heterogeneous multipipeline, L1MCOUNT.
		{"2M4+2M2", []int{0, 1, 2, 3}, nil, []string{"gzip", "mcf", "gcc", "twolf"}},
		// ICOUNT override: FLUSH mechanism disabled on the baseline.
		{"M8", []int{0, 0}, []Option{WithPolicy(fetch.ICount{})}, []string{"mcf", "twolf"}},
		// Warm-up boundary crossing.
		{"2M4+2M2", []int{0, 2}, []Option{WithWarmup(2_000)}, []string{"crafty", "gap"}},
		// Three-pipeline heterogeneous machine.
		{"1M6+2M4+2M2", []int{0, 1, 2}, nil, []string{"gcc", "vpr", "eon"}},
	}
	for _, tc := range cases {
		opt, ref, optStats, refStats := runBoth(t, tc.cfg, tc.mapping, 6_000, tc.opts, tc.names...)
		if !reflect.DeepEqual(opt, ref) {
			t.Errorf("%s/%v: results diverge\noptimized: %+v\nreference: %+v", tc.cfg, tc.names, opt, ref)
		}
		if optStats != refStats {
			t.Errorf("%s/%v: global stats diverge\noptimized: %+v\nreference: %+v", tc.cfg, tc.names, optStats, refStats)
		}
	}
}

// TestSteppingEquivalenceRandomized drives the same invariant through
// randomized configurations: random machine, workload mix, thread count,
// policy override and budget, over a fixed set of seeds so failures
// reproduce.
func TestSteppingEquivalenceRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized equivalence sweep is a tier-2 test")
	}
	configs := []string{"M8", "2M4", "2M4+2M2", "4M2", "1M6+2M4+2M2"}
	benches := []string{"gzip", "mcf", "gcc", "twolf", "gap", "vortex", "vpr", "crafty", "eon", "parser"}
	policies := []Option{nil, WithPolicy(fetch.ICount{}), WithPolicy(fetch.Flush{}), WithPolicy(fetch.L1MCount{})}[0:]
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := config.MustParse(configs[rng.Intn(len(configs))])
		n := 1 + rng.Intn(4)
		cfg = cfg.ForThreads(n)
		if cfg.TotalContexts() < n {
			n = cfg.TotalContexts()
		}
		names := make([]string, n)
		for i := range names {
			names[i] = benches[rng.Intn(len(benches))]
		}
		// A random feasible mapping: place each thread on a pipeline with a
		// free context.
		used := make([]int, len(cfg.Pipelines))
		mapping := make([]int, n)
		for i := range mapping {
			for {
				pi := rng.Intn(len(cfg.Pipelines))
				if used[pi] < cfg.Pipelines[pi].Contexts {
					used[pi]++
					mapping[i] = pi
					break
				}
			}
		}
		var opts []Option
		if po := policies[rng.Intn(len(policies))]; po != nil {
			opts = append(opts, po)
		}
		if rng.Intn(2) == 1 {
			opts = append(opts, WithWarmup(1_000))
		}
		budget := uint64(2_000 + rng.Intn(4_000))
		opt, ref, optStats, refStats := runBoth(t, cfg.Name, mapping, budget, opts, names...)
		if !reflect.DeepEqual(opt, ref) {
			t.Errorf("seed %d (%s, %v, map %v, budget %d): results diverge\noptimized: %+v\nreference: %+v",
				seed, cfg.Name, names, mapping, budget, opt, ref)
		}
		if optStats != refStats {
			t.Errorf("seed %d: global stats diverge\noptimized: %+v\nreference: %+v", seed, optStats, refStats)
		}
	}
}

// TestSteppingEquivalenceDynamicRemap covers the dynamic-remapping path:
// remap boundaries are wakeup events (the interval tick must not be
// skipped over), and migration squashes must unsubscribe in-flight uops
// from the wakeup structures.
func TestSteppingEquivalenceDynamicRemap(t *testing.T) {
	swap := func(misses []uint64, current []int) []int {
		// Rotate threads across pipelines every interval: maximum churn.
		out := make([]int, len(current))
		for i, p := range current {
			out[i] = p
		}
		if len(out) == 2 {
			out[0], out[1] = out[1], out[0]
		}
		return out
	}
	run := func(extra ...Option) Results {
		opts := append([]Option{WithDynamicMapping(1_500, swap)}, extra...)
		p, err := New(config.MustParse("2M4+2M2"), testSpecs(t, "gzip", "mcf"), []int{0, 2}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(5_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	opt := run()
	ref := run(WithReferenceStepping())
	if !reflect.DeepEqual(opt, ref) {
		t.Errorf("dynamic remap: results diverge\noptimized: %+v\nreference: %+v", opt, ref)
	}
}
