package core

import (
	"testing"

	"hdsmt/internal/bench"
	"hdsmt/internal/config"
	"hdsmt/internal/fetch"
	"hdsmt/internal/trace"
)

// testSpecs builds thread specs for the named benchmarks with per-thread
// distinct code and data spaces, as the experiment harness does.
func testSpecs(t testing.TB, names ...string) []ThreadSpec {
	t.Helper()
	specs := make([]ThreadSpec, len(names))
	for i, name := range names {
		b := bench.MustByName(name)
		// Code bases are staggered by a non-set-aligned offset so distinct
		// threads do not all collide in the same I-cache sets.
		prog, err := b.Build(uint64(0x100000 + i*0x4000000 + i*0x11040))
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		specs[i] = ThreadSpec{
			Name:     name,
			Program:  prog,
			Seed:     b.Params.Seed ^ uint64(i)<<32,
			DataBase: uint64(0x10000000 + i*0x40000000),
		}
	}
	return specs
}

func mustRun(t testing.TB, cfgName string, mapping []int, budget uint64, names ...string) Results {
	t.Helper()
	cfg := config.MustParse(cfgName)
	p, err := New(cfg, testSpecs(t, names...), mapping)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMonolithicSingleThread(t *testing.T) {
	r := mustRun(t, "M8", []int{0}, 20_000, "gzip")
	if r.Committed[0] != 20_000 {
		t.Fatalf("committed = %d, want 20000", r.Committed[0])
	}
	if r.IPC <= 0.5 {
		t.Errorf("gzip on M8 IPC = %.3f: an ILP benchmark should exceed 0.5", r.IPC)
	}
	if r.IPC > 8 {
		t.Errorf("IPC = %.3f exceeds machine width", r.IPC)
	}
}

func TestMonolithicTwoThreads(t *testing.T) {
	r := mustRun(t, "M8", []int{0, 0}, 15_000, "gzip", "bzip2")
	if r.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	// Both threads must make progress; the run stops when the first
	// finishes.
	for i, c := range r.Committed {
		if c == 0 {
			t.Errorf("thread %d committed nothing", i)
		}
	}
	if r.IPC <= 0 || r.IPC > 8 {
		t.Errorf("IPC = %.3f out of range", r.IPC)
	}
}

func TestClusteredConfig(t *testing.T) {
	r := mustRun(t, "2M4+2M2", []int{0, 1}, 10_000, "gzip", "mcf")
	if r.Config != "2M4+2M2" {
		t.Errorf("config = %s", r.Config)
	}
	if r.Policy != "L1MCOUNT" {
		t.Errorf("policy = %s, want L1MCOUNT for multipipeline (paper §4)", r.Policy)
	}
	for i, c := range r.Committed {
		if c == 0 {
			t.Errorf("thread %d committed nothing", i)
		}
	}
}

func TestBaselineUsesFlush(t *testing.T) {
	cfg := config.MustParse("M8")
	p, err := New(cfg, testSpecs(t, "mcf"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy().Name() != "FLUSH" {
		t.Errorf("baseline policy = %s", p.Policy().Name())
	}
	r, err := p.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	// mcf misses constantly; the FLUSH mechanism must have fired.
	if r.Threads[0].Flushes == 0 {
		t.Error("FLUSH mechanism never fired on mcf")
	}
	if r.Threads[0].L2LoadMisses == 0 {
		t.Error("mcf must miss in the L2")
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, "2M4+2M2", []int{0, 1, 2, 3}, 5_000, "gzip", "mcf", "gcc", "twolf")
	b := mustRun(t, "2M4+2M2", []int{0, 1, 2, 3}, 5_000, "gzip", "mcf", "gcc", "twolf")
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for i := range a.Committed {
		if a.Committed[i] != b.Committed[i] {
			t.Fatalf("thread %d committed %d vs %d", i, a.Committed[i], b.Committed[i])
		}
	}
}

func TestMappingAffectsPerformance(t *testing.T) {
	// gzip (high ILP) on the wide M4 vs on the narrow M2 must differ.
	wide := mustRun(t, "2M4+2M2", []int{0}, 10_000, "gzip")
	narrow := mustRun(t, "2M4+2M2", []int{2}, 10_000, "gzip")
	if wide.IPC <= narrow.IPC {
		t.Errorf("gzip IPC on M4 (%.3f) must exceed M2 (%.3f)", wide.IPC, narrow.IPC)
	}
	if narrow.IPC > 2 {
		t.Errorf("M2 pipeline IPC = %.3f exceeds its width", narrow.IPC)
	}
}

func TestMemBoundThreadIsSlow(t *testing.T) {
	ilp := mustRun(t, "M8", []int{0}, 10_000, "gzip")
	mem := mustRun(t, "M8", []int{0}, 10_000, "mcf")
	if mem.IPC >= ilp.IPC {
		t.Errorf("mcf IPC (%.3f) must be below gzip IPC (%.3f)", mem.IPC, ilp.IPC)
	}
	if mem.IPC > 1.5 {
		t.Errorf("mcf IPC = %.3f is implausibly high for a memory-bound thread", mem.IPC)
	}
}

func TestMispredictsOccurAndRecover(t *testing.T) {
	r := mustRun(t, "M8", []int{0}, 20_000, "crafty")
	st := r.Threads[0]
	if st.Mispredicts == 0 {
		t.Error("no mispredicts in 20k instructions is implausible")
	}
	if st.WrongPath == 0 {
		t.Error("mispredicts must cause wrong-path fetch")
	}
	if st.Squashed == 0 {
		t.Error("recovery must squash wrong-path instructions")
	}
	// Committed exactly the budget despite squashes.
	if st.Committed != 20_000 {
		t.Errorf("committed = %d", st.Committed)
	}
}

func TestConstructionErrors(t *testing.T) {
	cfg := config.MustParse("M8")
	specs := testSpecs(t, "gzip")
	if _, err := New(cfg, nil, nil); err == nil {
		t.Error("no threads must fail")
	}
	if _, err := New(cfg, specs, []int{0, 0}); err == nil {
		t.Error("mapping length mismatch must fail")
	}
	if _, err := New(cfg, specs, []int{5}); err == nil {
		t.Error("out-of-range pipeline must fail")
	}
	if _, err := New(cfg, []ThreadSpec{{}}, []int{0}); err == nil {
		t.Error("nil program must fail")
	}
	// Context overflow: M2 has a single context.
	cfg2 := config.MustParse("2M4+2M2")
	specs2 := testSpecs(t, "gzip", "bzip2")
	if _, err := New(cfg2, specs2, []int{2, 2}); err == nil {
		t.Error("two threads on a one-context M2 must fail")
	}
	// Too many threads for total contexts.
	specs7 := testSpecs(t, "gzip", "bzip2", "gcc", "eon", "gap", "crafty", "vortex")
	if _, err := New(cfg2, specs7, []int{0, 0, 1, 1, 2, 3, 0}); err == nil {
		t.Error("7 threads on 6 contexts must fail")
	}
}

func TestM8StretchesToSixThreads(t *testing.T) {
	// Paper §3: the baseline runs 6-thread workloads on stretched contexts.
	r := mustRun(t, "M8", []int{0, 0, 0, 0, 0, 0}, 2_000,
		"gzip", "gcc", "crafty", "eon", "gap", "bzip2")
	if len(r.Committed) != 6 {
		t.Fatalf("threads = %d", len(r.Committed))
	}
}

func TestZeroBudgetRejected(t *testing.T) {
	cfg := config.MustParse("M8")
	p, err := New(cfg, testSpecs(t, "gzip"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(0); err == nil {
		t.Error("zero budget must error")
	}
}

func TestWithPolicyOverride(t *testing.T) {
	cfg := config.MustParse("M8")
	p, err := New(cfg, testSpecs(t, "gzip"), []int{0}, WithPolicy(fetch.ICount{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy().Name() != "ICOUNT2.8" {
		t.Errorf("policy = %s", p.Policy().Name())
	}
	if p.flushMech {
		t.Error("ICOUNT override must disable the FLUSH mechanism")
	}
}

func TestStatsConsistency(t *testing.T) {
	r := mustRun(t, "3M4", []int{0, 1, 2}, 8_000, "gzip", "vpr", "gcc")
	var committed uint64
	for _, c := range r.Committed {
		committed += c
	}
	for i, st := range r.Threads {
		if st.Committed != r.Committed[i] {
			t.Errorf("thread %d stats mismatch", i)
		}
		if st.Fetched < st.Committed {
			t.Errorf("thread %d fetched %d < committed %d", i, st.Fetched, st.Committed)
		}
		if st.WrongPath > st.Fetched {
			t.Errorf("thread %d wrong-path exceeds fetched", i)
		}
	}
	if r.IPC <= 0 {
		t.Error("non-positive IPC")
	}
}

func TestRegisterFileConservation(t *testing.T) {
	cfg := config.MustParse("2M4+2M2")
	p, err := New(cfg, testSpecs(t, "gzip", "mcf"), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	// After a run, registers still held belong to in-flight uops only;
	// the pool must never leak below zero free or exceed size.
	if p.rf.FreeCount() < 0 || p.rf.FreeCount() > p.rf.Size() {
		t.Errorf("free count %d out of range", p.rf.FreeCount())
	}
	if p.rf.Stats().Allocs == 0 {
		t.Error("no registers were ever allocated")
	}
}

func TestReplayBufferBounded(t *testing.T) {
	cfg := config.MustParse("M8")
	p, err := New(cfg, testSpecs(t, "mcf"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(30_000); err != nil {
		t.Fatal(err)
	}
	// The replay buffer must not grow unboundedly: it holds at most the
	// uncommitted window plus the trim batch.
	if n := len(p.threads[0].buf); n > 3*4096+512 {
		t.Errorf("replay buffer grew to %d entries", n)
	}
}

func TestSixThreadHeterogeneous(t *testing.T) {
	// 1M6+2M4+2M2: contexts 2,2,2,1,1.
	r := mustRun(t, "1M6+2M4+2M2", []int{0, 0, 1, 1, 2, 3}, 3_000,
		"gzip", "vpr", "mcf", "eon", "perlbmk", "bzip2")
	if len(r.Committed) != 6 {
		t.Fatalf("threads = %d", len(r.Committed))
	}
	for i, c := range r.Committed {
		if c == 0 {
			t.Errorf("thread %d starved", i)
		}
	}
}

func TestFlushDisabledOnClustered(t *testing.T) {
	cfg := config.MustParse("2M4+2M2")
	p, err := New(cfg, testSpecs(t, "mcf"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(3_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads[0].Flushes != 0 {
		t.Error("multipipeline configs must not use the FLUSH mechanism (paper §4)")
	}
}

func TestTraceReplayEquivalence(t *testing.T) {
	// The committed instruction sequence must equal the raw trace prefix:
	// the simulator reorders execution but never commits out of order.
	b := bench.MustByName("gcc")
	prog, err := b.Build(0x100000)
	if err != nil {
		t.Fatal(err)
	}
	spec := ThreadSpec{Name: "gcc", Program: prog, Seed: b.Params.Seed, DataBase: 0x10000000}
	cfg := config.MustParse("M8")
	p, err := New(cfg, []ThreadSpec{spec}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4_000
	if _, err := p.Run(n); err != nil {
		t.Fatal(err)
	}
	// Regenerate the reference stream.
	ref := trace.NewStream(prog, spec.Seed, spec.DataBase)
	for i := 0; i < n; i++ {
		want, _ := ref.Next()
		_ = want
	}
	// The thread's stream consumed at least n instructions and its
	// committed count is exactly n.
	if got := p.threads[0].committed; got != n {
		t.Fatalf("committed %d, want %d", got, n)
	}
	if p.threads[0].stream.Seq() < n {
		t.Error("stream consumed fewer instructions than committed")
	}
}

func BenchmarkM8TwoThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, "M8", []int{0, 0}, 5_000, "gzip", "bzip2")
	}
}

func BenchmarkClusteredFourThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mustRun(b, "2M4+2M2", []int{0, 0, 1, 1}, 5_000, "gzip", "bzip2", "gcc", "eon")
	}
}
