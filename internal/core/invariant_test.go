package core

import (
	"testing"
	"testing/quick"

	"hdsmt/internal/bench"
	"hdsmt/internal/config"
	"hdsmt/internal/fetch"
	"hdsmt/internal/isa"
	"hdsmt/internal/trace"
)

// TestCommitSequenceEqualsTrace is the simulator's central correctness
// check: regardless of mispredict squashes, FLUSH replays and wrong-path
// fetch, each thread's architecturally committed instruction sequence must
// be exactly its trace prefix — Seq 0, 1, 2, ... with the same content the
// stream generates.
func TestCommitSequenceEqualsTrace(t *testing.T) {
	for _, tc := range []struct {
		cfgName string
		mapping []int
		names   []string
	}{
		{"M8", []int{0, 0}, []string{"gzip", "mcf"}},          // FLUSH active
		{"2M4+2M2", []int{0, 1}, []string{"crafty", "twolf"}}, // L1MCOUNT
		{"1M6+2M4+2M2", []int{0, 1, 2}, []string{"gcc", "vpr", "eon"}},
	} {
		specs := testSpecs(t, tc.names...)
		// Reference streams regenerate the expected sequences.
		refs := make([]*trace.Stream, len(specs))
		for i, s := range specs {
			refs[i] = trace.NewStream(s.Program, s.Seed, s.DataBase)
		}
		next := make([]uint64, len(specs))
		bad := false
		hook := func(tid int, in isa.Instruction) {
			if bad {
				return
			}
			want, _ := refs[tid].Next()
			if in != want {
				t.Errorf("%s thread %d commit %d: got %+v want %+v",
					tc.cfgName, tid, next[tid], in, want)
				bad = true
			}
			if in.Seq != next[tid] {
				t.Errorf("%s thread %d: committed seq %d, want %d",
					tc.cfgName, tid, in.Seq, next[tid])
				bad = true
			}
			next[tid]++
		}
		p, err := New(config.MustParse(tc.cfgName), specs, tc.mapping, WithCommitHook(hook))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(8_000); err != nil {
			t.Fatalf("%s: %v", tc.cfgName, err)
		}
		if bad {
			return
		}
	}
}

// TestCommitSequenceWithWarmup checks the invariant across the
// warm-up/measurement boundary.
func TestCommitSequenceWithWarmup(t *testing.T) {
	specs := testSpecs(t, "parser", "perlbmk")
	refs := make([]*trace.Stream, len(specs))
	for i, s := range specs {
		refs[i] = trace.NewStream(s.Program, s.Seed, s.DataBase)
	}
	hook := func(tid int, in isa.Instruction) {
		want, _ := refs[tid].Next()
		if in != want {
			t.Fatalf("thread %d diverged at seq %d", tid, in.Seq)
		}
	}
	p, err := New(config.MustParse("M8"), specs, []int{0, 0},
		WithCommitHook(hook), WithWarmup(3_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
}

// TestIPCNeverExceedsWidth bounds throughput by the machine's commit width
// for random benchmark pairings on random configurations.
func TestIPCNeverExceedsWidth(t *testing.T) {
	configs := []string{"M8", "3M4", "2M4+2M2", "1M6+2M4+2M2"}
	names := make([]string, 0, 12)
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	f := func(cfgPick, b1, b2 uint8) bool {
		cfg := config.MustParse(configs[int(cfgPick)%len(configs)])
		specs := testSpecs(t, names[int(b1)%len(names)], names[int(b2)%len(names)])
		m := []int{0, 0}
		if !cfg.Monolithic {
			m = []int{0, 1}
		}
		p, err := New(cfg, specs, m)
		if err != nil {
			return false
		}
		r, err := p.Run(2_000)
		if err != nil {
			return false
		}
		width := 0
		for _, pm := range cfg.Pipelines {
			width += pm.Width
		}
		return r.IPC > 0 && r.IPC <= float64(width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestGoldenDeterminism pins exact cycle counts for fixed inputs: any
// unintended behavioural change to the pipeline model shows up here.
// (Update the constants deliberately when the model itself changes.)
func TestGoldenDeterminism(t *testing.T) {
	r1 := mustRun(t, "M8", []int{0, 0}, 10_000, "eon", "gcc")
	r2 := mustRun(t, "M8", []int{0, 0}, 10_000, "eon", "gcc")
	if r1.Cycles != r2.Cycles || r1.IPC != r2.IPC {
		t.Fatalf("repeat run diverged: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
	r3 := mustRun(t, "2M4+2M2", []int{0, 1}, 10_000, "eon", "gcc")
	r4 := mustRun(t, "2M4+2M2", []int{0, 1}, 10_000, "eon", "gcc")
	if r3.Cycles != r4.Cycles {
		t.Fatalf("clustered repeat run diverged")
	}
	if r1.Cycles == r3.Cycles {
		t.Error("monolithic and clustered runs implausibly identical")
	}
}

// TestFlushRefetchesSameInstructions stresses FLUSH: mcf triggers many
// flush/replay cycles; the commit-order invariant plus exact budget
// completion proves the replay buffer rewinds correctly.
func TestFlushRefetchesSameInstructions(t *testing.T) {
	specs := testSpecs(t, "mcf")
	count := uint64(0)
	hook := func(tid int, in isa.Instruction) {
		if in.Seq != count {
			t.Fatalf("commit seq %d, want %d", in.Seq, count)
		}
		count++
	}
	p, err := New(config.MustParse("M8"), specs, []int{0}, WithCommitHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(6_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads[0].Flushes == 0 {
		t.Fatal("test needs FLUSH activations to be meaningful")
	}
	if count != 6_000 {
		t.Errorf("committed %d", count)
	}
}

// TestSquashAccounting verifies fetch/commit/squash arithmetic: every
// fetched instruction is eventually committed, squashed, or still in
// flight when the run stops.
func TestSquashAccounting(t *testing.T) {
	r := mustRun(t, "M8", []int{0, 0}, 10_000, "crafty", "twolf")
	for i, st := range r.Threads {
		inFlightMax := uint64(256 + 64) // ROB + front-end buffering
		if st.Fetched < st.Committed+st.Squashed {
			t.Errorf("thread %d: fetched %d < committed %d + squashed %d",
				i, st.Fetched, st.Committed, st.Squashed)
		}
		if st.Fetched > st.Committed+st.Squashed+inFlightMax {
			t.Errorf("thread %d: %d fetched instructions unaccounted",
				i, st.Fetched-st.Committed-st.Squashed)
		}
	}
}

// TestPerThreadIsolationOfPipelines checks that threads on different
// pipelines do not share queue capacity: saturating one pipeline with mcf
// must not starve an ILP thread on another pipeline. (They still share the
// L1D and L2 — the paper keeps caches shared — so interference through the
// memory system remains; the assertion is against *starvation*, and against
// doing worse than full queue sharing on the monolithic machine.)
func TestPerThreadIsolationOfPipelines(t *testing.T) {
	specs := testSpecs(t, "gzip", "mcf")
	run := func(cfgName string, m []int) Results {
		p, err := New(config.MustParse(cfgName), specs, m, WithWarmup(8_000))
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(10_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	clustered := run("2M4+2M2", []int{0, 1})
	if clustered.PerThreadIPC[0] < 0.5 {
		t.Errorf("gzip on a private M4 runs at %.3f IPC: starved", clustered.PerThreadIPC[0])
	}
	if clustered.PerThreadIPC[1] <= 0 {
		t.Error("mcf starved on its own pipeline")
	}
	// Note: on the monolithic M8 the same pair can favour gzip even more,
	// because FLUSH parks mcf on every L2 miss and hands gzip the whole
	// 8-wide machine — the paper's "ability to flush ... is crucial in the
	// MIX scenario" (§5). See TestFlushBenefitsILPPartner.
}

// TestFlushBenefitsILPPartner reproduces the §5 observation that the
// baseline's FLUSH mechanism protects ILP threads from memory-bound
// partners: with FLUSH, gzip co-running with mcf on M8 must run faster than
// under plain ICOUNT.
func TestFlushBenefitsILPPartner(t *testing.T) {
	specs := testSpecs(t, "gzip", "mcf")
	run := func(opts ...Option) Results {
		p, err := New(config.MustParse("M8"), specs, []int{0, 0},
			append(opts, WithWarmup(8_000))...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(10_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	withFlush := run()
	withICount := run(WithPolicy(fetch.ICount{}))
	if withFlush.PerThreadIPC[0] <= withICount.PerThreadIPC[0] {
		t.Errorf("FLUSH gzip IPC %.3f should beat plain ICOUNT %.3f",
			withFlush.PerThreadIPC[0], withICount.PerThreadIPC[0])
	}
}

// TestSharedPipelineContention is the converse: on the monolithic M8 the
// same pair contends for one set of queues, and gzip must pay something
// relative to isolation.
func TestSharedPipelineContention(t *testing.T) {
	shared := mustRun(t, "M8", []int{0, 0}, 10_000, "gzip", "mcf")
	alone := mustRun(t, "M8", []int{0}, 10_000, "gzip")
	if shared.PerThreadIPC[0] >= alone.PerThreadIPC[0] {
		t.Errorf("gzip IPC with mcf (%.3f) should be below gzip alone (%.3f)",
			shared.PerThreadIPC[0], alone.PerThreadIPC[0])
	}
}
