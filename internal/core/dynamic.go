package core

import (
	"fmt"

	"hdsmt/internal/pipeline"
)

// Dynamic thread-to-pipeline remapping implements the paper's future-work
// proposal (§7): "in future hdSMT implementations, this mapping should
// probably be made dynamically in order to better adapt to the dynamic
// changes in program behaviour during execution."
//
// At a fixed cycle interval the processor hands the remapper each thread's
// *observed* data-cache miss count over the last interval (replacing §2.1's
// offline profile) plus the current mapping; if the remapper moves a thread,
// the thread is migrated: its in-flight instructions are squashed, its
// rename state rolls back, and fetch restarts on the new pipeline after a
// drain penalty — the hardware cost a real migration would pay.

// Remapper decides thread placements from observed behaviour. misses[i] is
// thread i's L1D load misses during the last interval; current[i] its
// pipeline. It returns the desired mapping (it may return current
// unchanged). The returned mapping must respect pipeline capacities.
type Remapper func(misses []uint64, current []int) []int

// migrationDrainCycles is the fetch hiatus a migrated thread pays: the
// pipeline must drain and the new pipeline's front end refill.
const migrationDrainCycles = 8

// WithDynamicMapping installs a remapper invoked every interval cycles.
func WithDynamicMapping(interval uint64, fn Remapper) Option {
	if interval == 0 || fn == nil {
		panic("core: dynamic mapping needs a positive interval and a remapper")
	}
	return func(pr *Processor) {
		pr.remapInterval = interval
		pr.remapper = fn
	}
}

// Migrations returns how many thread migrations the dynamic policy
// performed.
func (p *Processor) Migrations() uint64 { return p.migrations }

// maybeRemap runs the remapper at interval boundaries.
func (p *Processor) maybeRemap() {
	if p.remapInterval == 0 || p.cycle%p.remapInterval != 0 {
		return
	}
	misses := p.remapMisses[:0]
	current := p.remapPipes[:0]
	for _, t := range p.threads {
		misses = append(misses, t.stats.LoadMisses-t.remapMissBase)
		t.remapMissBase = t.stats.LoadMisses
		current = append(current, t.pipe)
	}
	p.remapMisses, p.remapPipes = misses, current
	want := p.remapper(misses, current)
	if len(want) != len(p.threads) {
		panic(fmt.Sprintf("core: remapper returned %d placements for %d threads", len(want), len(p.threads)))
	}
	// Validate capacities before committing to any move.
	used := make([]int, len(p.pipes))
	for _, pipe := range want {
		if pipe < 0 || pipe >= len(p.pipes) {
			panic(fmt.Sprintf("core: remapper placed a thread on pipeline %d of %d", pipe, len(p.pipes)))
		}
		used[pipe]++
	}
	for i, n := range used {
		if n > p.pipes[i].Model.Contexts {
			panic(fmt.Sprintf("core: remapper overflowed pipeline %d (%d threads, %d contexts)",
				i, n, p.pipes[i].Model.Contexts))
		}
	}
	// Two phases: detach every mover first, then attach. Applying moves
	// one at a time could transiently overflow a pipeline during a swap
	// even though the final mapping is valid.
	var movers []*thread
	for i, t := range p.threads {
		if want[i] != t.pipe && !t.finished {
			movers = append(movers, t)
		}
	}
	for _, t := range movers {
		p.detach(t)
	}
	for _, t := range movers {
		p.attach(t, want[t.id])
	}
}

// detach squashes everything thread t has in flight and frees its hardware
// context (t.pipe becomes invalid until attach).
func (p *Processor) detach(t *thread) {
	p.squashAllOf(t)
	old := p.pipes[t.pipe]
	for i, id := range old.Threads {
		if id == t.id {
			old.Threads = append(old.Threads[:i], old.Threads[i+1:]...)
			break
		}
	}
	t.pipe = -1
}

// attach installs thread t on pipeline newPipe and restarts fetch at the
// oldest uncommitted correct-path instruction.
func (p *Processor) attach(t *thread, newPipe int) {
	p.pipes[newPipe].AssignThread(t.id)
	t.pipe = newPipe
	t.rewindTo(t.committed)
	t.pc = t.nextCorrect().PC
	t.wrongPath = false
	t.wrongPathPC = false
	t.flushStalled = nil
	t.lineBuf = 0
	t.fetchReadyAt = p.cycle + migrationDrainCycles
	p.migrations++
	t.stats.Migrations++
}

// squashAllOf removes every in-flight uop of t (ROB and fetch buffer).
func (p *Processor) squashAllOf(t *thread) {
	for {
		u, ok := t.rob.Tail()
		if !ok {
			break
		}
		t.rob.PopTail()
		p.squashUOp(t, u)
	}
	b := p.pipes[t.pipe]
	b.FetchBuf.Do(func(i int, u *pipeline.UOp) bool {
		if u.Thread == t.id && u.Stage == pipeline.StageFetched {
			p.squashUOp(t, u)
		}
		return true
	})
	if t.icount != 0 || t.inflightLoads != 0 {
		panic(fmt.Sprintf("core: thread %d accounting nonzero after full squash (icount=%d loads=%d)",
			t.id, t.icount, t.inflightLoads))
	}
}
