package core

import (
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/isa"
	"hdsmt/internal/trace"
)

// pingPong alternates thread 0 between pipelines 0 and 1 on every remap —
// the most migration-hostile remapper possible.
func pingPong(misses []uint64, current []int) []int {
	out := make([]int, len(current))
	copy(out, current)
	if out[0] == 0 {
		out[0] = 1
	} else {
		out[0] = 0
	}
	return out
}

// TestMigrationPreservesCommitSequence is the acid test for dynamic
// remapping: under constant forced migrations, every thread still commits
// exactly its trace prefix.
func TestMigrationPreservesCommitSequence(t *testing.T) {
	specs := testSpecs(t, "gcc", "twolf")
	refs := make([]*trace.Stream, len(specs))
	for i, s := range specs {
		refs[i] = trace.NewStream(s.Program, s.Seed, s.DataBase)
	}
	hook := func(tid int, in isa.Instruction) {
		want, _ := refs[tid].Next()
		if in != want {
			t.Fatalf("thread %d diverged at seq %d after migrations", tid, in.Seq)
		}
	}
	p, err := New(config.MustParse("2M4+2M2"), specs, []int{0, 1},
		WithCommitHook(hook), WithDynamicMapping(500, pingPong))
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run(8_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Migrations() == 0 {
		t.Fatal("no migrations happened; test is vacuous")
	}
	if r.Threads[0].Migrations == 0 {
		t.Error("per-thread migration count missing")
	}
	if r.Committed[0] != 8_000 && r.Committed[1] != 8_000 {
		t.Error("no thread reached the budget")
	}
}

// TestMigrationCostsButDoesNotWedge bounds the damage of pathological
// remapping: constant ping-pong slows the thread but must not stop it.
func TestMigrationCostsButDoesNotWedge(t *testing.T) {
	specs := testSpecs(t, "gzip", "eon")
	static, err := New(config.MustParse("2M4+2M2"), specs, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := static.Run(6_000)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := New(config.MustParse("2M4+2M2"), specs, []int{0, 1},
		WithDynamicMapping(300, pingPong))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := dyn.Run(6_000)
	if err != nil {
		t.Fatal(err)
	}
	if rd.IPC <= 0 {
		t.Fatal("dynamic run made no progress")
	}
	if rd.IPC > rs.IPC {
		t.Logf("note: ping-pong dynamic IPC %.3f ≥ static %.3f (possible but unusual)", rd.IPC, rs.IPC)
	}
}

// TestRemapperValidation checks that broken remappers are rejected loudly.
func TestRemapperValidation(t *testing.T) {
	specs := testSpecs(t, "gzip", "eon")
	cases := []Remapper{
		func(m []uint64, c []int) []int { return []int{0} },    // wrong length
		func(m []uint64, c []int) []int { return []int{9, 9} }, // out of range
		func(m []uint64, c []int) []int { return []int{2, 2} }, // M2 overflow
	}
	for i, rm := range cases {
		p, err := New(config.MustParse("2M4+2M2"), specs, []int{0, 1},
			WithDynamicMapping(100, rm))
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			_, _ = p.Run(5_000)
		}()
	}
}

// TestWithDynamicMappingPanicsOnBadArgs rejects nil/zero configuration.
func TestWithDynamicMappingPanicsOnBadArgs(t *testing.T) {
	for i, f := range []func(){
		func() { WithDynamicMapping(0, pingPong) },
		func() { WithDynamicMapping(100, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestNoRemapWhenMappingStable: a remapper that returns current must cause
// zero migrations.
func TestNoRemapWhenMappingStable(t *testing.T) {
	specs := testSpecs(t, "gzip", "eon")
	p, err := New(config.MustParse("2M4+2M2"), specs, []int{0, 1},
		WithDynamicMapping(100, func(m []uint64, c []int) []int { return c }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(4_000); err != nil {
		t.Fatal(err)
	}
	if p.Migrations() != 0 {
		t.Errorf("stable remapper caused %d migrations", p.Migrations())
	}
}
