package core

import (
	"testing"

	"hdsmt/internal/cache"
	"hdsmt/internal/config"
)

// newSteppedProcessor builds a 4-thread heterogeneous processor and steps
// it past its warm-up transient (pool growth, ring-slot slices, replay
// buffers reaching steady capacity).
func newSteppedProcessor(tb testing.TB, warmSteps int) *Processor {
	tb.Helper()
	p, err := New(config.MustParse("2M4+2M2"),
		testSpecs(tb, "gzip", "mcf", "gcc", "twolf"), []int{0, 1, 2, 3})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < warmSteps; i++ {
		p.step()
	}
	return p
}

// TestStepSteadyStateAllocs pins the zero-allocation property of the
// cycle loop: once scratch buffers, uop pool and event-ring slots have
// grown to their working sizes, stepping the processor must not allocate.
// A tiny budget is tolerated for capacity discovery on rare tail events
// (a new all-run maximum of completions landing on one ring slot grows
// that slot's slice once, permanently); steady-state throughput paths
// allocate nothing, which is what BenchmarkStep's ReportAllocs shows as
// 0 allocs/op.
func TestStepSteadyStateAllocs(t *testing.T) {
	p := newSteppedProcessor(t, 200_000)
	const cyclesPerRun = 5_000
	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < cyclesPerRun; i++ {
			p.step()
		}
	})
	if allocs > 0.001*cyclesPerRun {
		t.Errorf("steady-state step() allocates: %.1f allocs per %d cycles, want ~0", allocs, cyclesPerRun)
	}
}

// BenchmarkStep measures the raw cost of one simulated cycle in steady
// state, with b.ReportAllocs keeping the zero-allocation property visible
// in every benchmark run.
func BenchmarkStep(b *testing.B) {
	p := newSteppedProcessor(b, 60_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.step()
	}
}

// TestNewValidatesEventRingBounds covers the construction-time guards: a
// hierarchy whose FLUSH L2-miss detect latency does not fit the event
// ring must be rejected (the flushAt scheduling would otherwise wrap
// silently onto earlier cycles), as must a front-end delay that exceeds
// the ring.
func TestNewValidatesEventRingBounds(t *testing.T) {
	params := cache.DefaultParams()
	params.L1MissPenalty = ringSize + 10 // detect latency beyond the ring
	h := cache.NewHierarchyWith(params, cache.DefaultL1I(), cache.DefaultL1D(), cache.DefaultL2())
	_, err := New(config.MustParse("M8"), testSpecs(t, "gzip"), []int{0}, WithHierarchy(h))
	if err == nil {
		t.Fatal("New accepted a FLUSH detect latency beyond the event ring")
	}

	cfg := config.MustParse("M8")
	cfg.Params.RegAccessLatency = ringSize + 2
	_, err = New(cfg, testSpecs(t, "gzip"), []int{0})
	if err == nil {
		t.Fatal("New accepted a front-end issue delay beyond the event ring")
	}
}

// TestWithHierarchyValid exercises the WithHierarchy option on a valid
// custom hierarchy: the processor must simulate against it.
func TestWithHierarchyValid(t *testing.T) {
	h := cache.NewHierarchy()
	p, err := New(config.MustParse("M8"), testSpecs(t, "gzip"), []int{0}, WithHierarchy(h))
	if err != nil {
		t.Fatal(err)
	}
	if p.Hierarchy() != h {
		t.Fatal("WithHierarchy did not install the hierarchy")
	}
	if _, err := p.Run(2_000); err != nil {
		t.Fatal(err)
	}
}
