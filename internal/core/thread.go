package core

import (
	"fmt"

	"hdsmt/internal/isa"
	"hdsmt/internal/pipeline"
	"hdsmt/internal/queue"
	"hdsmt/internal/trace"
)

// ThreadSpec describes one software thread to run: its program, the seed
// individualizing its dynamic behaviour, and its data address-space base.
type ThreadSpec struct {
	Name     string
	Program  *trace.Program
	Seed     uint64
	DataBase uint64
}

// thread is the per-hardware-context state.
type thread struct {
	id   int
	spec ThreadSpec
	pipe int // pipeline index this thread is mapped to

	stream *trace.Stream

	// Replay buffer: correct-path instructions fetched but not yet
	// committed. FLUSH squashes re-fetch from here instead of re-reading
	// the (forward-only) trace stream.
	buf     []isa.Instruction
	bufBase uint64 // trace Seq of buf[0]
	cursor  int    // index into buf of the next instruction to fetch

	// Fetch state.
	pc           uint64
	wrongPath    bool   // fetching past an unresolved mispredict
	wrongPathPC  bool   // wrong-path fetch escaped the program: fetch idles
	wpCount      uint64 // wrong-path materialization counter
	fetchSeq     uint64 // next fetch-order number (wrong path included)
	fetchReadyAt uint64 // I-cache miss / redirect stall
	// lineBuf is the fetch unit's single-entry fill buffer: the line
	// address of the last I-cache miss. When the miss resolves, fetch
	// consumes the buffered line directly, guaranteeing forward progress
	// even when co-running threads conflict in the I-cache.
	lineBuf      uint64
	flushStalled *pipeline.UOp // the L2-missing load FLUSH stalled us on

	// Back-end state.
	rob       *queue.Deque[*pipeline.UOp]
	renameMap pipeline.RenameMap

	// Policy inputs and accounting.
	remapMissBase uint64 // LoadMisses at the last remap interval
	icount        int    // instructions in pre-issue stages
	inflightLoads int    // loads fetched but not completed
	doneUops      int    // completed-but-uncommitted uops in this ROB
	committed     uint64
	target        uint64 // finish when committed reaches this (0 = never)
	finished      bool

	stats ThreadStats
}

// ThreadStats aggregates one thread's activity over a run.
type ThreadStats struct {
	Committed    uint64
	Fetched      uint64 // correct-path + wrong-path instructions fetched
	WrongPath    uint64 // wrong-path instructions fetched
	Squashed     uint64
	Mispredicts  uint64 // resolved mispredicted correct-path branches
	Flushes      uint64 // FLUSH-mechanism activations
	LoadMisses   uint64 // L1D misses among this thread's issued loads
	L2LoadMisses uint64
	Migrations   uint64 // dynamic-mapping thread migrations
}

func newThread(id int, spec ThreadSpec, robSize int) *thread {
	return &thread{
		id:     id,
		spec:   spec,
		pipe:   -1,
		stream: trace.NewStream(spec.Program, spec.Seed, spec.DataBase),
		pc:     spec.Program.Blocks[0].Start(),
		rob:    queue.New[*pipeline.UOp](robSize),
	}
}

// nextCorrect returns the next correct-path instruction without consuming
// it; advanceCorrect consumes it. The pair lets fetch inspect the head.
func (t *thread) nextCorrect() *isa.Instruction {
	if t.cursor == len(t.buf) {
		// Extend in place and generate directly into the new slot (one
		// instruction copy instead of three on the replay-fill path).
		n := len(t.buf)
		if n == cap(t.buf) {
			t.buf = append(t.buf, isa.Instruction{})
		} else {
			t.buf = t.buf[:n+1]
		}
		t.stream.NextInto(&t.buf[n])
	}
	return &t.buf[t.cursor]
}

func (t *thread) advanceCorrect() {
	if t.cursor >= len(t.buf) {
		panic("core: advancing past the replay buffer")
	}
	t.cursor++
}

// rewindTo repositions the fetch cursor so the next correct-path instruction
// delivered has trace sequence number seq (FLUSH re-fetch).
func (t *thread) rewindTo(seq uint64) {
	if seq < t.bufBase || seq > t.bufBase+uint64(len(t.buf)) {
		panic(fmt.Sprintf("core: rewind to seq %d outside replay buffer [%d,%d]",
			seq, t.bufBase, t.bufBase+uint64(len(t.buf))))
	}
	t.cursor = int(seq - t.bufBase)
}

// retireTrim drops committed instructions from the replay buffer. Trimming
// is batched so the slice shift cost amortizes to O(1) per instruction.
// The batch is sized to keep the buffer (ROB depth + batch) small enough
// that per-run growth does not dominate the simulator's heap allocation,
// while the amortized shift stays well under one entry copy per commit.
func (t *thread) retireTrim(committedSeq uint64) {
	const trimBatch = 1024
	keepFrom := committedSeq + 1
	if keepFrom < t.bufBase+trimBatch {
		return
	}
	n := int(keepFrom - t.bufBase)
	if n > t.cursor {
		panic("core: trimming uncommitted replay entries past the cursor")
	}
	t.buf = append(t.buf[:0], t.buf[n:]...)
	t.bufBase = keepFrom
	t.cursor -= n
}

// fetchable reports whether the fetch engine may pick this thread at cycle.
func (t *thread) fetchable(cycle uint64) bool {
	return t.pipe >= 0 &&
		!t.finished &&
		t.flushStalled == nil &&
		!t.wrongPathPC &&
		t.fetchReadyAt <= cycle
}
