package core

// Per-unit activity counters: how many times each microarchitectural
// structure was accessed over a run. They are the raw material of the
// activity-based energy model (config.EnergyModel, assembled by
// sim.EnergyOf) and are deliberately *architectural event* counts, not
// per-cycle polling counts: every increment sits in code shared by the
// optimized and the reference stepping paths (fetchOne/fetchStage,
// dispatchStage, issueOne, writebackStage, commitOne), so the counters are
// bit-identical in both modes — the equivalence tests compare full Results
// values, Activity included. All counters are plain fields or
// construction-time slices: steady-state stepping stays allocation-free.

// QueueKinds is the number of issue-queue kinds (isa.IQ/FQ/LQ order).
const QueueKinds = 3

// PipeActivity counts one pipeline's private-structure accesses.
type PipeActivity struct {
	// FetchBufWrites counts uops written into this pipeline's decoupling
	// buffer (every fetched instruction, wrong path included).
	FetchBufWrites uint64 `json:"fetch_buf_writes"`
	// QueueWrites/QueueReads count issue-queue inserts (dispatch) and
	// removals-by-issue, indexed by isa.Queue (IQ, FQ, LQ).
	QueueWrites [QueueKinds]uint64 `json:"queue_writes"`
	QueueReads  [QueueKinds]uint64 `json:"queue_reads"`
	// FUOps counts operations started on this pipeline's functional units,
	// indexed like the queues (integer, floating-point, load/store).
	FUOps [QueueKinds]uint64 `json:"fu_ops"`
}

func (a PipeActivity) sub(base PipeActivity) PipeActivity {
	out := PipeActivity{FetchBufWrites: a.FetchBufWrites - base.FetchBufWrites}
	for k := 0; k < QueueKinds; k++ {
		out.QueueWrites[k] = a.QueueWrites[k] - base.QueueWrites[k]
		out.QueueReads[k] = a.QueueReads[k] - base.QueueReads[k]
		out.FUOps[k] = a.FUOps[k] - base.FUOps[k]
	}
	return out
}

// Activity counts whole-processor unit accesses over the measured phase of
// a run (warm-up activity is subtracted, like every other Results field).
// Wrong-path work is included — it toggles real transistors — while
// per-cycle bookkeeping (ready-list scans, waiter-list walks) is not: those
// differ between stepping paths and consume no data-path energy.
type Activity struct {
	// Fetched counts instructions through the fetch stage (correct + wrong
	// path); ICacheReads counts I-cache line accesses (one per fetch-engine
	// cache probe, hits and misses alike), BranchLookups the predictor/BTB
	// accesses for control instructions at fetch.
	Fetched       uint64 `json:"fetched"`
	ICacheReads   uint64 `json:"icache_reads"`
	BranchLookups uint64 `json:"branch_lookups"`
	// Decoded counts uops through decode/rename (= dispatched);
	// RenameReads the source rename-map lookups, RenameWrites the
	// destination allocations.
	Decoded      uint64 `json:"decoded"`
	RenameReads  uint64 `json:"rename_reads"`
	RenameWrites uint64 `json:"rename_writes"`
	// RegReads counts physical-register source reads at issue, RegWrites
	// the result writebacks.
	RegReads  uint64 `json:"reg_reads"`
	RegWrites uint64 `json:"reg_writes"`
	// DCacheReads counts issued loads (L1D probes), DCacheWrites committed
	// stores, L2Accesses the L1 misses (instruction and data) that probe
	// the shared L2.
	DCacheReads  uint64 `json:"dcache_reads"`
	DCacheWrites uint64 `json:"dcache_writes"`
	L2Accesses   uint64 `json:"l2_accesses"`
	// Pipes holds the per-pipeline structure accesses, indexed like
	// Microarch.Pipelines.
	Pipes []PipeActivity `json:"pipes,omitempty"`
}

// sub returns the per-field difference a - base (measurement-phase deltas).
// The Pipes slice is freshly allocated: sub runs once per results call, not
// in the stepping loop.
func (a Activity) sub(base Activity) Activity {
	out := Activity{
		Fetched:       a.Fetched - base.Fetched,
		ICacheReads:   a.ICacheReads - base.ICacheReads,
		BranchLookups: a.BranchLookups - base.BranchLookups,
		Decoded:       a.Decoded - base.Decoded,
		RenameReads:   a.RenameReads - base.RenameReads,
		RenameWrites:  a.RenameWrites - base.RenameWrites,
		RegReads:      a.RegReads - base.RegReads,
		RegWrites:     a.RegWrites - base.RegWrites,
		DCacheReads:   a.DCacheReads - base.DCacheReads,
		DCacheWrites:  a.DCacheWrites - base.DCacheWrites,
		L2Accesses:    a.L2Accesses - base.L2Accesses,
	}
	if len(a.Pipes) > 0 {
		out.Pipes = make([]PipeActivity, len(a.Pipes))
		for i := range a.Pipes {
			var b PipeActivity
			if i < len(base.Pipes) {
				b = base.Pipes[i]
			}
			out.Pipes[i] = a.Pipes[i].sub(b)
		}
	}
	return out
}

// subInto is sub with caller-provided Pipes backing, for callers that take
// deltas inside a steady-state loop (the sampled-execution interval loop)
// and must not allocate. pipes must have len(a.Pipes) capacity.
func (a Activity) subInto(base Activity, pipes []PipeActivity) Activity {
	scalarA, scalarB := a, base
	scalarA.Pipes, scalarB.Pipes = nil, nil
	out := scalarA.sub(scalarB)
	pipes = pipes[:0]
	for i := range a.Pipes {
		var b PipeActivity
		if i < len(base.Pipes) {
			b = base.Pipes[i]
		}
		pipes = append(pipes, a.Pipes[i].sub(b))
	}
	out.Pipes = pipes
	return out
}

// addInto accumulates a into dst field-wise, growing dst.Pipes on first use
// (end-of-run aggregation, not a stepping-loop path).
func addInto(dst *Activity, a Activity) {
	dst.Fetched += a.Fetched
	dst.ICacheReads += a.ICacheReads
	dst.BranchLookups += a.BranchLookups
	dst.Decoded += a.Decoded
	dst.RenameReads += a.RenameReads
	dst.RenameWrites += a.RenameWrites
	dst.RegReads += a.RegReads
	dst.RegWrites += a.RegWrites
	dst.DCacheReads += a.DCacheReads
	dst.DCacheWrites += a.DCacheWrites
	dst.L2Accesses += a.L2Accesses
	if len(dst.Pipes) < len(a.Pipes) {
		dst.Pipes = append(dst.Pipes, make([]PipeActivity, len(a.Pipes)-len(dst.Pipes))...)
	}
	for i := range a.Pipes {
		p := &dst.Pipes[i]
		p.FetchBufWrites += a.Pipes[i].FetchBufWrites
		for k := 0; k < QueueKinds; k++ {
			p.QueueWrites[k] += a.Pipes[i].QueueWrites[k]
			p.QueueReads[k] += a.Pipes[i].QueueReads[k]
			p.FUOps[k] += a.Pipes[i].FUOps[k]
		}
	}
}

// clone returns a deep copy (the warm-up baseline snapshot must not alias
// the live counters' Pipes slice).
func (a Activity) clone() Activity {
	out := a
	if len(a.Pipes) > 0 {
		out.Pipes = make([]PipeActivity, len(a.Pipes))
		copy(out.Pipes, a.Pipes)
	}
	return out
}

// Activity returns the processor's unit-access counters since construction
// (warm-up included; Results carries the measured-phase delta).
func (p *Processor) Activity() Activity { return p.activity.clone() }
