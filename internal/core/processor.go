// Package core assembles and drives the hdSMT processor: the shared fetch
// engine with its policy, the shared branch predictor, register file and
// memory hierarchy, and the per-pipeline clustered back ends. It implements
// the cycle loop of a trace-driven, 8-stage, out-of-order SMT in the style
// of SMTSIM with the paper's multipipeline extensions.
package core

import (
	"fmt"

	"hdsmt/internal/branch"
	"hdsmt/internal/cache"
	"hdsmt/internal/config"
	"hdsmt/internal/fetch"
	"hdsmt/internal/isa"
	"hdsmt/internal/pipeline"
	"hdsmt/internal/regfile"
	"hdsmt/internal/trace"
)

// frontLatency is the fetch-to-issue distance in cycles implied by the
// paper's 8-stage pipeline (fetch, decode, rename, dispatch, issue wake-up):
// an instruction fetched at cycle c may issue no earlier than c+frontLatency.
// Register-file reads add RegAccessLatency-1 on top (paper §4: hdSMT pays 2
// cycles, the monolithic baseline 1).
const frontLatency = 5

// Processor is one configured hdSMT (or monolithic SMT) machine instance.
type Processor struct {
	cfg    config.Microarch
	policy fetch.Policy
	// flushMech enables the FLUSH mechanism (baseline configuration).
	flushMech bool

	hier  *cache.Hierarchy
	pred  *branch.Predictor
	btb   *branch.BTB
	ras   []*branch.RAS
	rf    *regfile.File
	pipes []*pipeline.Backend

	threads []*thread

	cycle uint64
	// Event rings: completions/flush events land at (cycle & ringMask).
	// Ring slots are recycled slices, avoiding per-cycle map traffic. The
	// ring must out-span the longest possible completion latency.
	completions [ringSize][]*pipeline.UOp
	flushAt     [ringSize][]*pipeline.UOp
	// issueTimers schedules dispatched uops at their IssueAt cycle (the
	// front-end depth plus register-read delay): the third event source of
	// the wakeup scheduler, alongside completions and FLUSH detections.
	issueTimers [ringSize][]*pipeline.UOp

	// waiters holds, per physical register, the dispatched consumers still
	// waiting for its value. writebackStage drains a register's list when
	// the value is produced, waking each consumer exactly once — the
	// event-driven replacement for polling every queue entry per cycle.
	waiters [][]waiter

	// dispatchSeq stamps uops in dispatch order; issue-queue ready lists
	// sort by it so wakeup-order arrivals still issue oldest-first.
	dispatchSeq uint64

	// Occupancy counters for O(1) stage skipping on the optimized path:
	// readyCount tracks entries across all issue-queue ready lists,
	// doneCount tracks completed-but-uncommitted uops. When either is
	// zero the corresponding stage provably has no work this cycle.
	readyCount int
	doneCount  int

	// anyFinished is set at the commit that makes a thread reach its
	// target, so the run loop avoids a per-step scan of every thread.
	anyFinished bool

	// reference selects the naive stepping path (per-cycle polling of all
	// issue-queue entries, no idle-cycle fast-forward). Simulated behaviour
	// is bit-identical to the optimized path; tests assert it.
	reference bool

	// freeUOps recycles retired/squashed uop records (never ones that a
	// pending event ring entry may still reference).
	freeUOps []*pipeline.UOp

	// commitHook, when set, observes every architecturally retired
	// instruction in commit order (used by validation tests).
	commitHook func(thread int, in isa.Instruction)

	// Dynamic remapping (see dynamic.go).
	remapInterval uint64
	remapper      Remapper
	migrations    uint64

	// Scratch reused across cycles to avoid per-cycle allocation.
	orderScratch  []int
	stateScratch  []fetch.ThreadState
	issuedScratch []*pipeline.UOp
	remapMisses   []uint64
	remapPipes    []int

	// Warm-up: instructions each thread retires before measurement starts.
	warmup       uint64
	startCycle   uint64
	baseStats    Stats
	baseThread   []ThreadStats
	baseActivity Activity

	// Sampled-execution scratch (see sampled.go), reused across sampling
	// units so the interval loop stays allocation-free.
	sampleScratch     []uint64
	sampleWarmScratch []uint64
	samplePipeScratch []PipeActivity
	sampleCommitted   []uint64
	sampleCtl         []trace.ControlFunc
	sampleUnit        uint64

	stats Stats
	// activity holds the per-unit access counters behind the energy model
	// (see activity.go). Incremented only in code shared by both stepping
	// paths, so optimized and reference runs count identically.
	activity Activity
}

// Stats aggregates whole-processor counters over a run.
type Stats struct {
	Cycles          uint64
	TotalCommitted  uint64
	TotalFetched    uint64
	TotalSquashed   uint64
	TotalDispatched uint64
	TotalIssued     uint64
}

// GlobalStats returns the processor-wide counters.
func (p *Processor) GlobalStats() Stats { return p.stats }

// Option customizes processor construction.
type Option func(*Processor)

// WithWarmup makes Run retire n instructions per thread before measurement
// begins. Microarchitectural state (caches, predictor, BTB) warms during
// this phase; cycles and statistics reported in Results cover only the
// measured phase. Scaled-down runs need this: at full 300M-instruction
// scale cold-cache effects amortize away, at 10^5 scale they dominate
// unless excluded.
func WithWarmup(n uint64) Option {
	return func(pr *Processor) { pr.warmup = n }
}

// WithCommitHook registers an observer called for every architecturally
// retired instruction, in commit order. Intended for validation: the
// committed sequence of each thread must equal its trace prefix regardless
// of squashes, flushes and replays.
func WithCommitHook(fn func(thread int, in isa.Instruction)) Option {
	return func(pr *Processor) { pr.commitHook = fn }
}

// WithHierarchy overrides the memory subsystem (default: the paper's
// Table 1 hierarchy). Latency parameters are validated against the event
// ring at construction.
func WithHierarchy(h *cache.Hierarchy) Option {
	return func(pr *Processor) { pr.hier = h }
}

// WithReferenceStepping selects the naive stepping path: issueStage polls
// every issue-queue entry every cycle and idle cycles are stepped one by
// one, as the simulator did before the event-driven wakeup scheduler. The
// simulated machine behaves bit-identically in both modes (asserted by the
// equivalence tests); the reference path exists as the oracle for those
// tests and for before/after performance measurement.
func WithReferenceStepping() Option {
	return func(pr *Processor) { pr.reference = true }
}

// WithPolicy overrides the fetch policy (the default follows the paper:
// FLUSH for the monolithic baseline, L1MCOUNT otherwise). Overriding the
// policy also disables the FLUSH mechanism unless the policy is fetch.Flush.
func WithPolicy(p fetch.Policy) Option {
	return func(pr *Processor) {
		pr.policy = p
		_, isFlush := p.(fetch.Flush)
		pr.flushMech = isFlush
	}
}

// New builds a processor for cfg running the given threads, with mapping[i]
// naming the pipeline thread i is assigned to. The mapping must respect
// pipeline context capacities (see package mapping for policies that
// produce valid mappings).
func New(cfg config.Microarch, specs []ThreadSpec, mapping []int, opts ...Option) (*Processor, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no threads")
	}
	if len(mapping) != len(specs) {
		return nil, fmt.Errorf("core: mapping covers %d threads, workload has %d", len(mapping), len(specs))
	}
	cfg = cfg.ForThreads(len(specs))
	if cfg.TotalContexts() < len(specs) {
		return nil, fmt.Errorf("core: %s has %d contexts for %d threads",
			cfg.Name, cfg.TotalContexts(), len(specs))
	}

	p := &Processor{
		cfg:       cfg,
		policy:    fetch.ForConfig(cfg.Monolithic),
		flushMech: cfg.Monolithic,
		hier:      cache.NewHierarchy(),
		pred:      branch.NewPredictor(len(specs)),
		btb:       branch.NewBTB(),
		rf:        regfile.New(cfg.Params.RenameRegs),
	}
	for i, m := range cfg.Pipelines {
		p.pipes = append(p.pipes, pipeline.NewBackend(i, m, cfg.Params.FetchWidth))
	}
	p.activity.Pipes = make([]PipeActivity, len(p.pipes))
	for i, spec := range specs {
		if spec.Program == nil {
			return nil, fmt.Errorf("core: thread %d has no program", i)
		}
		t := newThread(i, spec, cfg.Params.ROBPerThread)
		p.threads = append(p.threads, t)
		p.ras = append(p.ras, branch.NewRAS())
	}
	for i, pipe := range mapping {
		if pipe < 0 || pipe >= len(p.pipes) {
			return nil, fmt.Errorf("core: thread %d mapped to pipeline %d of %d", i, pipe, len(p.pipes))
		}
		if !p.pipes[pipe].HasContextFor() {
			return nil, fmt.Errorf("core: pipeline %d (%s) context overflow",
				pipe, p.pipes[pipe].Model.Name)
		}
		p.pipes[pipe].AssignThread(i)
		p.threads[i].pipe = pipe
	}
	for _, o := range opts {
		o(p)
	}

	// The event rings must out-span every schedulable distance, or slots
	// would silently wrap onto earlier cycles. The completion path already
	// guards per-event (issueOne panics); the FLUSH-detect and issue-timer
	// distances are fixed by construction parameters, so validate them here
	// instead of wrapping silently at run time.
	if d := p.hier.L2DetectLatency(); d <= 0 || d >= ringSize {
		return nil, fmt.Errorf("core: FLUSH L2-miss detect latency %d outside event ring (0, %d)", d, ringSize)
	}
	if d := frontLatency + cfg.Params.RegAccessLatency - 1; d <= 0 || d >= ringSize {
		return nil, fmt.Errorf("core: front-end issue delay %d outside event ring (0, %d)", d, ringSize)
	}
	p.waiters = make([][]waiter, p.rf.Size())
	waiterBacking := make([]waiter, 4*p.rf.Size())
	for i := range p.waiters {
		p.waiters[i] = waiterBacking[i*4 : i*4 : (i+1)*4]
	}

	// Pre-warm the uop pool from one contiguous backing array sized to the
	// machine's peak in-flight population (every ROB slot plus every fetch
	// buffer slot, with slack for squashed records awaiting their pending
	// completion event). Contiguity keeps the hot commit/issue pointer
	// chases within a compact region; allocUOp falls back to the heap in
	// the rare case the pool runs dry.
	poolSize := len(p.threads)*cfg.Params.ROBPerThread + 256
	for _, b := range p.pipes {
		poolSize += b.FetchBuf.Cap()
	}
	backing := make([]pipeline.UOp, poolSize)
	p.freeUOps = make([]*pipeline.UOp, 0, poolSize)
	for i := poolSize - 1; i >= 0; i-- {
		p.freeUOps = append(p.freeUOps, &backing[i])
	}

	// Pre-size the event-ring slots from one backing array. Per-slot
	// occupancy usually stays in single digits; seeding capacity keeps
	// steady-state stepping allocation-free instead of trickling growth
	// events for the whole run as rare occupancy peaks are discovered.
	const slotCap = 16
	ringBacking := make([]*pipeline.UOp, 3*ringSize*slotCap)
	next := func() []*pipeline.UOp {
		s := ringBacking[:0:slotCap]
		ringBacking = ringBacking[slotCap:]
		return s
	}
	for i := range p.completions {
		p.completions[i] = next()
		p.flushAt[i] = next()
		p.issueTimers[i] = next()
	}
	return p, nil
}

// Config returns the processor's configuration.
func (p *Processor) Config() config.Microarch { return p.cfg }

// Policy returns the active fetch policy.
func (p *Processor) Policy() fetch.Policy { return p.policy }

// Cycle returns the current cycle number.
func (p *Processor) Cycle() uint64 { return p.cycle }

// Hierarchy exposes the memory subsystem (for statistics inspection).
func (p *Processor) Hierarchy() *cache.Hierarchy { return p.hier }

// Predictor exposes the branch predictor (for statistics inspection).
func (p *Processor) Predictor() *branch.Predictor { return p.pred }

// ThreadStats returns a copy of thread i's counters.
func (p *Processor) ThreadStats(i int) ThreadStats {
	t := p.threads[i]
	st := t.stats
	st.Committed = t.committed
	return st
}

// Results summarizes a completed run.
type Results struct {
	Config    string
	Policy    string
	Cycles    uint64
	Committed []uint64 // per thread, correct-path instructions retired
	Threads   []ThreadStats

	// IPC is the combined throughput: total committed / cycles, the
	// paper's performance metric.
	IPC float64
	// PerThreadIPC is each thread's committed/cycles.
	PerThreadIPC []float64

	// Activity is the measured-phase per-unit access counters feeding the
	// activity-based energy model (sim.EnergyOf).
	Activity Activity

	// Sampled carries the systematic-sampling estimate when the run used
	// RunSampled (see sampled.go); nil for exact runs, and omitted from
	// JSON so exact-run encodings are unchanged.
	Sampled *SampleSummary `json:",omitempty"`
}

// Run simulates until one thread retires maxPerThread measured instructions
// (the paper's stopping rule: "each simulation finishes as soon as one
// thread ... finishes executing 300 million instructions") or the safety
// cycle cap is reached. When the processor was built WithWarmup(n), every
// thread first retires n unmeasured instructions. Run may be called once
// per Processor.
func (p *Processor) Run(maxPerThread uint64) (Results, error) {
	if maxPerThread == 0 {
		return Results{}, fmt.Errorf("core: zero instruction budget")
	}
	// A thread always makes forward progress (see package docs); the cap
	// only guards against simulator bugs. The slowest credible thread
	// (mcf-like, everything missing to memory) still beats 1 instruction
	// per 600 cycles.
	cycleCap := (p.warmup+maxPerThread)*600*uint64(len(p.threads)) + 1_000_000

	if p.warmup > 0 {
		for {
			p.step()
			allWarm := true
			for _, t := range p.threads {
				if t.committed < p.warmup {
					allWarm = false
					break
				}
			}
			if allWarm {
				break
			}
			if p.cycle > cycleCap {
				return Results{}, fmt.Errorf("core: warm-up of %d instructions did not finish within %d cycles", p.warmup, cycleCap)
			}
		}
	}

	// Snapshot the measurement baseline and arm per-thread targets.
	p.startCycle = p.cycle
	p.baseStats = p.stats
	p.baseActivity = p.activity.clone()
	p.baseThread = p.baseThread[:0]
	for i, t := range p.threads {
		p.baseThread = append(p.baseThread, p.ThreadStats(i))
		t.target = t.committed + maxPerThread
	}

	for {
		p.step()
		if p.anyFinished {
			break
		}
		if p.cycle > cycleCap {
			return Results{}, fmt.Errorf("core: no thread finished within %d cycles (budget %d): simulator stall", cycleCap, maxPerThread)
		}
	}
	return p.results(), nil
}

func (p *Processor) results() Results {
	cycles := p.cycle - p.startCycle
	r := Results{
		Config: p.cfg.Name,
		Policy: p.policy.Name(),
		Cycles: cycles,
	}
	var total uint64
	for i := range p.threads {
		st := p.ThreadStats(i).sub(p.baseThread[i])
		committed := st.Committed
		r.Committed = append(r.Committed, committed)
		r.Threads = append(r.Threads, st)
		total += committed
		r.PerThreadIPC = append(r.PerThreadIPC, float64(committed)/float64(cycles))
	}
	r.IPC = float64(total) / float64(cycles)
	r.Activity = p.activity.sub(p.baseActivity)
	return r
}

// sub returns the per-field difference s - base (measurement-phase deltas).
func (s ThreadStats) sub(base ThreadStats) ThreadStats {
	return ThreadStats{
		Committed:    s.Committed - base.Committed,
		Fetched:      s.Fetched - base.Fetched,
		WrongPath:    s.WrongPath - base.WrongPath,
		Squashed:     s.Squashed - base.Squashed,
		Mispredicts:  s.Mispredicts - base.Mispredicts,
		Flushes:      s.Flushes - base.Flushes,
		LoadMisses:   s.LoadMisses - base.LoadMisses,
		L2LoadMisses: s.L2LoadMisses - base.L2LoadMisses,
		Migrations:   s.Migrations - base.Migrations,
	}
}
