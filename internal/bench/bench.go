// Package bench models the SPECint2000 benchmark suite as calibrated
// synthetic-trace profiles.
//
// The paper drives its simulator with 300M-instruction trace segments of the
// twelve SPECint2000 benchmarks compiled for Alpha. Those traces cannot be
// redistributed, so each benchmark here is a trace.GenParams profile
// calibrated to reproduce the *behavioural axes the paper's evaluation
// depends on*: instruction-level parallelism (dependence-window width),
// branch predictability (branch-kind mixture), and above all data-cache
// behaviour (working-set size and access-pattern mixture), which drives both
// the workload taxonomy of Tables 2-3 (ILP vs MEM vs MIX) and the HEUR
// mapping policy's profile ranking. mcf is the canonical cache-hostile
// benchmark; twolf, vpr and perlbmk are the remaining MEM-class programs;
// the other eight are ILP class, matching the paper's workload tables.
package bench

import (
	"fmt"

	"hdsmt/internal/trace"
)

// Class is the paper's benchmark taxonomy.
type Class uint8

const (
	// ILP marks benchmarks with high instruction-level parallelism and
	// good memory behaviour.
	ILP Class = iota
	// MEM marks benchmarks with bad memory behaviour.
	MEM
)

// String names the class as the paper does.
func (c Class) String() string {
	if c == ILP {
		return "ILP"
	}
	return "MEM"
}

// Benchmark is one SPECint2000 program profile.
type Benchmark struct {
	Name   string
	Class  Class
	Params trace.GenParams
}

// DefaultCodeBase is the code address programs are built at when the caller
// does not supply a per-thread base.
const DefaultCodeBase = 0x120000

// base returns GenParams fields shared by all profiles.
func base(name string, seed uint64) trace.GenParams {
	return trace.GenParams{
		Name:            name,
		Seed:            seed,
		NumBlocks:       160,
		NumFuncs:        12,
		BlockMin:        4,
		BlockMax:        12,
		CodeBase:        DefaultCodeBase,
		DepWindow:       12,
		JumpFrac:        0.06,
		CallFrac:        0.05,
		LoopPeriodMin:   4,
		LoopPeriodMax:   96,
		BiasProb:        0.93,
		RandomTakenProb: 0.5,
		StrideMin:       8,
		StrideMax:       64,
	}
}

// all is the benchmark table. Working sets are chosen against the paper's
// 64KB L1D / 512KB L2: ILP benchmarks mostly fit in L1, MEM benchmarks blow
// through it (mcf through the L2 as well).
var all = func() []Benchmark {
	mk := func(name string, class Class, seed uint64, f func(*trace.GenParams)) Benchmark {
		p := base(name, seed)
		f(&p)
		return Benchmark{Name: name, Class: class, Params: p}
	}
	return []Benchmark{
		mk("gzip", ILP, 0xA001, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.20, 0.08
			p.MulFrac = 0.01
			p.DepWindow = 16
			p.LoopFrac, p.BiasedFrac = 0.55, 0.33
			p.WorkingSet = 48 << 10
			p.StrideFrac, p.StackFrac = 0.70, 0.20
		}),
		mk("vpr", MEM, 0xA002, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.28, 0.10
			p.FPFrac = 0.04
			p.DepWindow = 7
			p.LoopFrac, p.BiasedFrac = 0.35, 0.33
			p.WorkingSet = 1 << 20
			p.StrideFrac, p.StackFrac = 0.25, 0.15
		}),
		mk("gcc", ILP, 0xA003, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.24, 0.12
			p.DepWindow = 12
			p.LoopFrac, p.BiasedFrac = 0.38, 0.42
			p.WorkingSet = 72 << 10
			p.StrideFrac, p.StackFrac = 0.55, 0.25
			p.NumBlocks = 280 // gcc's large, branchy code footprint
		}),
		mk("mcf", MEM, 0xA004, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.35, 0.09
			p.DepWindow = 4 // pointer chasing: serial dependence chains
			p.LoopFrac, p.BiasedFrac = 0.30, 0.35
			p.WorkingSet = 12 << 20 // far beyond the 512KB L2
			p.StrideFrac, p.StackFrac = 0.10, 0.08
		}),
		mk("crafty", ILP, 0xA005, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.22, 0.07
			p.MulFrac = 0.02
			p.DepWindow = 14
			p.LoopFrac, p.BiasedFrac = 0.30, 0.40
			p.WorkingSet = 40 << 10
			p.StrideFrac, p.StackFrac = 0.55, 0.30
		}),
		mk("parser", ILP, 0xA006, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.25, 0.10
			p.DepWindow = 10
			p.LoopFrac, p.BiasedFrac = 0.35, 0.38
			p.WorkingSet = 96 << 10
			p.StrideFrac, p.StackFrac = 0.45, 0.25
		}),
		mk("eon", ILP, 0xA007, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.23, 0.11
			p.FPFrac = 0.12 // C++ ray tracer: the FP-heaviest SPECint program
			p.DepWindow = 18
			p.LoopFrac, p.BiasedFrac = 0.50, 0.40
			p.WorkingSet = 32 << 10
			p.StrideFrac, p.StackFrac = 0.60, 0.30
			p.CallFrac = 0.09
		}),
		mk("perlbmk", MEM, 0xA008, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.26, 0.12
			p.DepWindow = 8
			p.LoopFrac, p.BiasedFrac = 0.32, 0.36
			p.WorkingSet = 640 << 10
			p.StrideFrac, p.StackFrac = 0.30, 0.20
			p.CallFrac = 0.08
		}),
		mk("gap", ILP, 0xA009, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.24, 0.09
			p.MulFrac = 0.03
			p.DepWindow = 15
			p.LoopFrac, p.BiasedFrac = 0.48, 0.35
			p.WorkingSet = 56 << 10
			p.StrideFrac, p.StackFrac = 0.60, 0.22
		}),
		mk("vortex", ILP, 0xA00A, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.26, 0.14
			p.DepWindow = 13
			p.LoopFrac, p.BiasedFrac = 0.36, 0.44
			p.WorkingSet = 88 << 10
			p.StrideFrac, p.StackFrac = 0.50, 0.28
		}),
		mk("bzip2", ILP, 0xA00B, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.21, 0.09
			p.DepWindow = 16
			p.LoopFrac, p.BiasedFrac = 0.55, 0.30
			p.WorkingSet = 64 << 10
			p.StrideFrac, p.StackFrac = 0.75, 0.15
		}),
		mk("twolf", MEM, 0xA00C, func(p *trace.GenParams) {
			p.LoadFrac, p.StoreFrac = 0.30, 0.10
			p.FPFrac = 0.05
			p.DepWindow = 6
			p.LoopFrac, p.BiasedFrac = 0.33, 0.34
			p.WorkingSet = 2 << 20
			p.StrideFrac, p.StackFrac = 0.20, 0.12
		}),
	}
}()

// All returns the twelve SPECint2000 benchmark profiles.
func All() []Benchmark {
	out := make([]Benchmark, len(all))
	copy(out, all)
	return out
}

// ByName resolves a benchmark by its SPEC name.
func ByName(name string) (Benchmark, error) {
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// MustByName is ByName for static workload tables; it panics on error.
func MustByName(name string) Benchmark {
	b, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Build constructs the benchmark's synthetic program with its code placed at
// codeBase (pass 0 for the default). Distinct threads of one workload use
// distinct bases so the shared I-cache and predictor see distinct programs.
func (b Benchmark) Build(codeBase uint64) (*trace.Program, error) {
	p := b.Params
	if codeBase != 0 {
		p.CodeBase = codeBase
	}
	return trace.BuildProgram(p)
}
