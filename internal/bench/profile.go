package bench

import (
	"sort"
	"sync"

	"hdsmt/internal/cache"
	"hdsmt/internal/trace"
)

// The HEUR mapping policy (paper §2.1) is profile based: "By means of
// profile information, the active threads are arranged by the number of
// data cache misses". This file is that profiling pass: it runs a
// benchmark's data-reference stream through a standalone L1 data cache and
// counts misses. Results are memoized — a profile is a static property of a
// benchmark, gathered once, exactly as an offline profiling run would be.

// ProfileLen is the instruction count of the standard profiling run. It is
// long enough that every benchmark's miss behaviour is past warm-up.
const ProfileLen = 200_000

// profileKey memoizes per (benchmark, length).
type profileKey struct {
	name string
	n    int
}

var (
	profileMu    sync.Mutex
	profileCache = map[profileKey]uint64{}
)

// DCacheMisses returns the number of L1 data-cache misses benchmark b incurs
// over an n-instruction profiling run on the paper's 64KB L1D. The result
// is deterministic and memoized.
func DCacheMisses(b Benchmark, n int) (uint64, error) {
	key := profileKey{b.Name, n}
	profileMu.Lock()
	if v, ok := profileCache[key]; ok {
		profileMu.Unlock()
		return v, nil
	}
	profileMu.Unlock()

	prog, err := b.Build(0)
	if err != nil {
		return 0, err
	}
	l1d := cache.New(cache.DefaultL1D())
	// The profiling run uses base 0: only the miss *count ordering* across
	// benchmarks matters to the mapping policy, and it is base independent.
	s := trace.NewStream(prog, b.Params.Seed, 0)
	for i := 0; i < n; i++ {
		in, _ := s.Next()
		if in.Class.IsMem() {
			l1d.Access(in.EffAddr, uint64(i))
		}
	}
	misses := l1d.Stats().Misses

	profileMu.Lock()
	profileCache[key] = misses
	profileMu.Unlock()
	return misses, nil
}

// Profile is one benchmark's profiling summary.
type Profile struct {
	Benchmark Benchmark
	Misses    uint64
}

// ProfileAll profiles every given benchmark over the standard run length and
// returns the results sorted by ascending miss count — the order of the
// mapping policy's thread list T ("the first thread in T is the one with the
// lesser number of misses").
func ProfileAll(bs []Benchmark) ([]Profile, error) {
	out := make([]Profile, len(bs))
	for i, b := range bs {
		m, err := DCacheMisses(b, ProfileLen)
		if err != nil {
			return nil, err
		}
		out[i] = Profile{Benchmark: b, Misses: m}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Misses < out[j].Misses })
	return out, nil
}
