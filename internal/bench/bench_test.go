package bench

import (
	"testing"

	"hdsmt/internal/isa"
	"hdsmt/internal/trace"
)

func TestTwelveBenchmarks(t *testing.T) {
	bs := All()
	if len(bs) != 12 {
		t.Fatalf("SPECint2000 has 12 benchmarks, got %d", len(bs))
	}
	want := map[string]Class{
		"gzip": ILP, "vpr": MEM, "gcc": ILP, "mcf": MEM,
		"crafty": ILP, "parser": ILP, "eon": ILP, "perlbmk": MEM,
		"gap": ILP, "vortex": ILP, "bzip2": ILP, "twolf": MEM,
	}
	for _, b := range bs {
		cl, ok := want[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if b.Class != cl {
			t.Errorf("%s class = %v, want %v (paper workload tables)", b.Name, b.Class, cl)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("mcf")
	if err != nil || b.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustByName("nope")
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Error("All must return a defensive copy")
	}
}

func TestBuildAllPrograms(t *testing.T) {
	for _, b := range All() {
		p, err := b.Build(0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		lo, _ := p.PCBounds()
		if lo != DefaultCodeBase {
			t.Errorf("%s: code base %#x", b.Name, lo)
		}
	}
}

func TestBuildCustomCodeBase(t *testing.T) {
	b := MustByName("gzip")
	p, err := b.Build(0x40000000)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := p.PCBounds()
	if lo != 0x40000000 {
		t.Errorf("code base = %#x", lo)
	}
}

func TestBuildDeterministic(t *testing.T) {
	b := MustByName("gcc")
	p1, _ := b.Build(0)
	p2, _ := b.Build(0)
	if p1.Len() != p2.Len() {
		t.Error("builds differ")
	}
}

func TestClassString(t *testing.T) {
	if ILP.String() != "ILP" || MEM.String() != "MEM" {
		t.Error("class names must match the paper")
	}
}

func TestClassSeparationInMissRates(t *testing.T) {
	// The core calibration claim: every MEM benchmark must out-miss every
	// ILP benchmark on the paper's L1D, or the workload taxonomy and the
	// HEUR policy lose their meaning.
	const n = 100_000
	worstILP, worstILPName := uint64(0), ""
	bestMEM, bestMEMName := ^uint64(0), ""
	for _, b := range All() {
		m, err := DCacheMisses(b, n)
		if err != nil {
			t.Fatal(err)
		}
		switch b.Class {
		case ILP:
			if m > worstILP {
				worstILP, worstILPName = m, b.Name
			}
		case MEM:
			if m < bestMEM {
				bestMEM, bestMEMName = m, b.Name
			}
		}
	}
	if worstILP >= bestMEM {
		t.Errorf("class overlap: ILP %s misses %d >= MEM %s misses %d",
			worstILPName, worstILP, bestMEMName, bestMEM)
	}
}

func TestMcfIsWorst(t *testing.T) {
	// mcf is SPECint2000's canonical cache killer; the profiles must
	// preserve that.
	const n = 100_000
	mcf, err := DCacheMisses(MustByName("mcf"), n)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range All() {
		if b.Name == "mcf" {
			continue
		}
		m, err := DCacheMisses(b, n)
		if err != nil {
			t.Fatal(err)
		}
		if m >= mcf {
			t.Errorf("%s misses %d >= mcf misses %d", b.Name, m, mcf)
		}
	}
}

func TestDCacheMissesMemoized(t *testing.T) {
	b := MustByName("gzip")
	m1, err := DCacheMisses(b, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DCacheMisses(b, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("memoized profile changed")
	}
}

func TestProfileAllSorted(t *testing.T) {
	ps, err := ProfileAll(All())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 12 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Misses > ps[i].Misses {
			t.Error("ProfileAll must sort ascending by misses")
		}
	}
	if ps[len(ps)-1].Benchmark.Name != "mcf" {
		t.Errorf("heaviest misser = %s, want mcf", ps[len(ps)-1].Benchmark.Name)
	}
}

func TestILPBenchmarksHaveWiderDepWindows(t *testing.T) {
	// ILP class must genuinely model more instruction-level parallelism.
	sumILP, nILP, sumMEM, nMEM := 0, 0, 0, 0
	for _, b := range All() {
		if b.Class == ILP {
			sumILP += b.Params.DepWindow
			nILP++
		} else {
			sumMEM += b.Params.DepWindow
			nMEM++
		}
	}
	if nILP == 0 || nMEM == 0 {
		t.Fatal("both classes must be populated")
	}
	if float64(sumILP)/float64(nILP) <= float64(sumMEM)/float64(nMEM) {
		t.Error("ILP benchmarks must average wider dependence windows than MEM")
	}
}

func TestStreamsExecuteFPForEon(t *testing.T) {
	// eon keeps the FP pipelines warm; confirm its stream issues FP work.
	b := MustByName("eon")
	p, _ := b.Build(0)
	s := trace.NewStream(p, b.Params.Seed, 0)
	fp := 0
	for i := 0; i < 20000; i++ {
		in, _ := s.Next()
		if in.Class.IsFP() {
			fp++
		}
	}
	if fp < 20000/100 {
		t.Errorf("eon issued only %d FP instructions in 20000", fp)
	}
}

func TestBranchClassesPresent(t *testing.T) {
	// Every profile should exercise the control-flow machinery.
	for _, b := range All() {
		p, _ := b.Build(0)
		s := trace.NewStream(p, b.Params.Seed, 0)
		branches := 0
		for i := 0; i < 5000; i++ {
			in, _ := s.Next()
			if in.Class == isa.Branch {
				branches++
			}
		}
		if branches == 0 {
			t.Errorf("%s executed no conditional branches", b.Name)
		}
	}
}

func BenchmarkProfileMcf(b *testing.B) {
	mcf := MustByName("mcf")
	for i := 0; i < b.N; i++ {
		profileMu.Lock()
		delete(profileCache, profileKey{"mcf", 50_000})
		profileMu.Unlock()
		if _, err := DCacheMisses(mcf, 50_000); err != nil {
			b.Fatal(err)
		}
	}
}
