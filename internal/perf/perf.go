// Package perf records the repository's performance trajectory: small,
// machine-readable reports (BENCH_*.json) of how fast the simulator runs,
// produced by cmd/experiments -perf and compared across PRs. A report
// times the same workload basket on the optimized stepping path and on
// the naive reference path (core.WithReferenceStepping), so every report
// carries its own baseline: the speedup column is meaningful regardless
// of the machine it was measured on.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// The perf trajectory's standard measurement basket: the §2.1 HEUR
// evaluation of the flagship heterogeneous configuration across one
// workload per type (ILP, MEM, MIX). cmd/experiments -perf and
// BenchmarkEvaluateHEUR in bench_test.go both measure exactly this
// basket, so BENCH_*.json reports and `go test -bench` track the same
// quantity across PRs.
const (
	BasketConfig = "2M4+2M2"
	BasketBudget = 8_000
	BasketWarmup = 2_000
)

// BasketWorkloads lists the basket's workloads (ILP, MEM, MIX).
func BasketWorkloads() []string { return []string{"2W1", "2W4", "2W7"} }

// Sample is one timed measurement of a simulation workload.
type Sample struct {
	// Label names the workload (e.g. "evaluate-HEUR/2M4+2M2").
	Label string `json:"label"`
	// Mode is "optimized" (event-driven wakeup + idle fast-forward) or
	// "reference" (naive per-cycle polling).
	Mode string `json:"mode"`

	WallSeconds  float64 `json:"wall_seconds"`
	Instructions uint64  `json:"simulated_instructions"`
	Cycles       uint64  `json:"simulated_cycles"`

	// MIPS is millions of simulated instructions per wall second — the
	// trajectory's headline number.
	MIPS       float64 `json:"mips"`
	NsPerCycle float64 `json:"ns_per_cycle"`

	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
}

// Report is the on-disk trajectory record.
type Report struct {
	Benchmark string `json:"benchmark"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Samples []Sample `json:"samples"`

	// Speedup maps each label to optimized-MIPS / reference-MIPS, filled
	// by ComputeSpeedups once both modes are sampled.
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// NewReport starts a report for the named benchmark on this machine.
func NewReport(benchmark string) *Report {
	return &Report{
		Benchmark: benchmark,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// Measure times f — which reports how many instructions and cycles it
// simulated — and appends the sample. Allocation figures come from the
// runtime's allocation counters, so f should run single-threaded for them
// to be attributable.
func (r *Report) Measure(label, mode string, f func() (instructions, cycles uint64, err error)) (Sample, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	instructions, cycles, err := f()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return Sample{}, fmt.Errorf("perf: measuring %s/%s: %w", label, mode, err)
	}
	s := Sample{
		Label:        label,
		Mode:         mode,
		WallSeconds:  wall,
		Instructions: instructions,
		Cycles:       cycles,
	}
	if wall > 0 {
		s.MIPS = float64(instructions) / wall / 1e6
	}
	if cycles > 0 {
		s.NsPerCycle = wall * 1e9 / float64(cycles)
		s.AllocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(cycles)
		s.BytesPerCycle = float64(after.TotalAlloc-before.TotalAlloc) / float64(cycles)
	}
	r.Samples = append(r.Samples, s)
	return s, nil
}

// ComputeSpeedups fills Speedup with optimized/reference MIPS per label.
func (r *Report) ComputeSpeedups() {
	mips := map[string]map[string]float64{}
	for _, s := range r.Samples {
		if mips[s.Label] == nil {
			mips[s.Label] = map[string]float64{}
		}
		mips[s.Label][s.Mode] = s.MIPS
	}
	r.Speedup = map[string]float64{}
	for label, m := range mips {
		if ref, ok := m["reference"]; ok && ref > 0 {
			if opt, ok := m["optimized"]; ok {
				r.Speedup[label] = opt / ref
			}
		}
	}
	if len(r.Speedup) == 0 {
		r.Speedup = nil
	}
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding report: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("perf: writing report: %w", err)
	}
	return nil
}

// ReadFile loads a previously written report (for cross-PR comparison).
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: decoding report %s: %w", path, err)
	}
	return &r, nil
}
