package perf

import (
	"path/filepath"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	r := NewReport("unit")
	if _, err := r.Measure("cell", "reference", func() (uint64, uint64, error) {
		return 1_000_000, 2_000_000, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Measure("cell", "optimized", func() (uint64, uint64, error) {
		return 1_000_000, 2_000_000, nil
	}); err != nil {
		t.Fatal(err)
	}
	r.ComputeSpeedups()
	if _, ok := r.Speedup["cell"]; !ok {
		t.Fatal("speedup not computed")
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "unit" || len(got.Samples) != 2 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	for _, s := range got.Samples {
		if s.MIPS <= 0 || s.Instructions != 1_000_000 {
			t.Fatalf("bad sample: %+v", s)
		}
	}
}

func TestMeasureError(t *testing.T) {
	r := NewReport("unit")
	if _, err := r.Measure("cell", "optimized", func() (uint64, uint64, error) {
		return 0, 0, filepath.ErrBadPattern
	}); err == nil {
		t.Fatal("error not propagated")
	}
	if len(r.Samples) != 0 {
		t.Fatal("failed measurement recorded a sample")
	}
}
