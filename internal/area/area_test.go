package area

import (
	"math"
	"testing"

	"hdsmt/internal/config"
)

func TestStageString(t *testing.T) {
	want := []string{"IF", "DE", "DI", "EX", "IC", "DEQ", "DIQ", "CQ"}
	for i, w := range want {
		if Stage(i).String() != w {
			t.Errorf("stage %d = %q, want %q", i, Stage(i).String(), w)
		}
	}
	if Stage(99).String() == "" {
		t.Error("unknown stage name empty")
	}
}

func TestBreakdownTotalAdd(t *testing.T) {
	a := Breakdown{IF: 1, EX: 2}
	b := Breakdown{EX: 3, CQ: 4}
	a.Add(b)
	if a[EX] != 5 || a[CQ] != 4 || a[IF] != 1 {
		t.Errorf("Add result %v", a)
	}
	if a.Total() != 10 {
		t.Errorf("Total = %v", a.Total())
	}
}

// TestFig3Deltas pins the headline calibration: the published area deltas of
// every evaluated configuration against the M8 baseline.
func TestFig3Deltas(t *testing.T) {
	cases := map[string]float64{
		"3M4":         -0.17,
		"4M4":         +0.1014,
		"2M4+2M2":     -0.27,
		"3M4+2M2":     +0.001, // paper label −1%; see package comment
		"1M6+2M4+2M2": +0.02,
	}
	for name, want := range cases {
		d, err := DeltaVsBaseline(config.MustParse(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(d-want) > 0.005 {
			t.Errorf("%s delta = %+.4f, want %+.4f", name, d, want)
		}
	}
}

func TestBaselineDeltaZero(t *testing.T) {
	d, err := DeltaVsBaseline(config.MustParse("M8"))
	if err != nil || d != 0 {
		t.Errorf("M8 delta = %v, %v", d, err)
	}
}

func TestM8TotalNear170(t *testing.T) {
	// Fig. 2b's M8 bar tops out around 170 mm² at 0.18 µm.
	total := MustTotal(config.MustParse("M8"))
	if total < 165 || total > 175 {
		t.Errorf("M8 area = %.2f, want ~170", total)
	}
}

func TestOrderingWiderIsBigger(t *testing.T) {
	// Within multipipeline use, wider models must cost more area.
	get := func(m config.Model) float64 {
		b, err := PipelineArea(m, true)
		if err != nil {
			t.Fatal(err)
		}
		return b.Total()
	}
	b8, b6, b4, b2 := get(config.M8), get(config.M6), get(config.M4), get(config.M2)
	if !(b8 > b6 && b6 > b4 && b4 > b2) {
		t.Errorf("pipeline areas not monotone: M8=%.1f M6=%.1f M4=%.1f M2=%.1f", b8, b6, b4, b2)
	}
}

func TestOverheadsApplied(t *testing.T) {
	mono, err := PipelineArea(config.M4, false)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := PipelineArea(config.M4, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi[EX]-mono[EX]*1.1) > 1e-9 {
		t.Errorf("EX overhead: mono %.3f multi %.3f", mono[EX], multi[EX])
	}
	for s := DE; s < NumStages; s++ {
		if s != EX && multi[s] != mono[s] {
			t.Errorf("stage %v must not change with multipipeline", s)
		}
	}
	if FetchArea(true) != FetchArea(false)*1.2 {
		t.Error("fetch overhead must be 20%")
	}
}

func TestOneFetchEnginePerConfig(t *testing.T) {
	// 3M4's IF component equals exactly one multipipeline fetch engine.
	b, err := MicroarchArea(config.MustParse("3M4"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[IF]-FetchArea(true)) > 1e-9 {
		t.Errorf("3M4 IF area = %.3f, want %.3f", b[IF], FetchArea(true))
	}
}

func TestSinglePipelineProcessorFig2b(t *testing.T) {
	// The Fig. 2b bars: M8 plain; M6/M4/M2 with the 20% fetch engine and
	// 10% EX overhead.
	m8, err := SinglePipelineProcessor(config.M8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m8[IF]-FetchArea(false)) > 1e-9 {
		t.Error("M8 bar must carry the baseline fetch engine")
	}
	m4, err := SinglePipelineProcessor(config.M4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m4[IF]-FetchArea(true)) > 1e-9 {
		t.Error("M4 bar must carry the 20% bigger fetch engine")
	}
	if m4.Total() >= m8.Total() {
		t.Error("M4 single-pipeline processor must be smaller than M8")
	}
}

func TestUnknownModelRejected(t *testing.T) {
	if _, err := PipelineArea(config.Model{Name: "M3"}, false); err == nil {
		t.Error("unknown model must error")
	}
	bad := config.Microarch{Name: "x", Pipelines: []config.Model{{Name: "M3"}}}
	if _, err := MicroarchArea(bad); err == nil {
		t.Error("MicroarchArea must propagate the error")
	}
	if _, err := Total(bad); err == nil {
		t.Error("Total must propagate the error")
	}
	if _, err := DeltaVsBaseline(bad); err == nil {
		t.Error("DeltaVsBaseline must propagate the error")
	}
}

func TestMustTotalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustTotal(config.Microarch{Name: "x", Pipelines: []config.Model{{Name: "M3"}}})
}

func TestAllStagesPositive(t *testing.T) {
	for _, m := range config.Models() {
		b, err := SinglePipelineProcessor(m)
		if err != nil {
			t.Fatal(err)
		}
		for s := Stage(0); s < NumStages; s++ {
			if b[s] <= 0 {
				t.Errorf("%s stage %v = %v, want positive", m.Name, s, b[s])
			}
		}
	}
}

// Scaled structures (config.ScaleModel) price by entry count: bigger queues
// cost area, smaller queues save it, and only the queue stages move.
func TestScaledModelArea(t *testing.T) {
	base, err := PipelineArea(config.M4, true)
	if err != nil {
		t.Fatal(err)
	}
	up, err := config.ScaleModel(config.M4, 150, 150)
	if err != nil {
		t.Fatal(err)
	}
	down, err := config.ScaleModel(config.M4, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := PipelineArea(up, true)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := PipelineArea(down, true)
	if err != nil {
		t.Fatal(err)
	}
	if !(bigger.Total() > base.Total() && smaller.Total() < base.Total()) {
		t.Errorf("totals not monotone in structure size: %.2f / %.2f / %.2f",
			smaller.Total(), base.Total(), bigger.Total())
	}
	for _, s := range []Stage{IF, DE, DI, EX, IC} {
		if bigger[s] != base[s] || smaller[s] != base[s] {
			t.Errorf("stage %v moved under queue scaling", s)
		}
	}
	// Queue stages scale linearly in entries: 150% queues -> 1.5x DIQ/CQ.
	if got, want := bigger[DIQ], 1.5*base[DIQ]; !approxEq(got, want) {
		t.Errorf("DIQ = %v, want %v", got, want)
	}
	if got, want := bigger[CQ], 1.5*base[CQ]; !approxEq(got, want) {
		t.Errorf("CQ = %v, want %v", got, want)
	}
	if got, want := bigger[DEQ], 1.5*base[DEQ]; !approxEq(got, want) {
		t.Errorf("DEQ = %v, want %v", got, want)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// A scaled microarchitecture totals through MicroarchArea/Total like any
// other, so area-budget search constraints see resized structures.
func TestScaledMicroarchTotal(t *testing.T) {
	up, err := config.ScaleModel(config.M4, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	big := config.NewMicroarch(up, up)
	small := config.MustParse("2M4")
	ab, err := Total(big)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Total(small)
	if err != nil {
		t.Fatal(err)
	}
	if ab <= as {
		t.Errorf("scaled-up 2M4 area %.2f not above base %.2f", ab, as)
	}
}
