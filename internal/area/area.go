// Package area implements the paper's area cost model (§3).
//
// The paper estimates per-stage areas with the Karlsruhe Simultaneous
// Multithreaded Simulator's transistor-count/chip-space tool at 0.18µm,
// excludes the register file and caches (shared by all configurations), and
// adds two overheads taken from Burns & Gaudiot's SMT layout work: +10% on
// each pipeline's execution core (shared-memory/register access logic) and
// +20% on the fetch engine when it feeds multiple pipelines.
//
// The Karlsruhe tool is not available, so this package is calibrated: the
// four pipeline models' stage areas are fixed constants chosen so that the
// six evaluated configurations reproduce the paper's published Fig. 3 area
// deltas against the M8 baseline:
//
//	3M4 −17%, 4M4 +10.14%, 2M4+2M2 −27%, 3M4+2M2 ≈ −1%, 1M6+2M4+2M2 +2%
//
// Three of those labels pin the linear system exactly (B4 from 3M4 vs 4M4,
// the fetch engine from 3M4, B2 from 2M4+2M2, B6 from 1M6+2M4+2M2); the
// remaining configuration (3M4+2M2) then computes to +0.1%, within rounding
// of the paper's −1% label. Only these *relative* areas enter the paper's
// performance-per-area results, so the calibration preserves every
// conclusion the model feeds.
package area

import (
	"fmt"
	"strings"

	"hdsmt/internal/config"
)

// Stage identifies one area component, matching the paper's Fig. 2b/Fig. 3
// legend: instruction fetch, decode, dispatch, execution core, instruction
// completion, plus the decode, dispatch, and completion queues.
type Stage int

// Stages in the paper's stacking order (bottom to top of the bars).
const (
	IF Stage = iota
	DE
	DI
	EX
	IC
	DEQ
	DIQ
	CQ
	NumStages
)

var stageNames = [NumStages]string{"IF", "DE", "DI", "EX", "IC", "DEQ", "DIQ", "CQ"}

// String returns the figure legend abbreviation.
func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Breakdown is an area decomposition in mm² (0.18 µm).
type Breakdown [NumStages]float64

// Total sums all components.
func (b Breakdown) Total() float64 {
	t := 0.0
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates o into b component-wise.
func (b *Breakdown) Add(o Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// fetchEngine is the baseline (M8) instruction-fetch stage area in mm².
const fetchEngine = 2.24

// fetchMultipipeOverhead is the paper's +20% fetch-engine overhead for
// multipipeline support.
const fetchMultipipeOverhead = 1.20

// exCoreOverhead is the paper's +10% execution-core overhead per pipeline
// for shared register-file/memory access logic.
const exCoreOverhead = 1.10

// backendBase holds each model's per-stage areas in mm² *before* the
// multipipeline execution-core overhead. The EX entries are the base
// execution cores; everything else is overhead-free. Totals (with the 10%
// EX overhead applied for M6/M4/M2 in multipipeline use) are calibrated to
// the Fig. 3 deltas as described in the package comment:
//
//	B8 = 167.76 (no overhead, monolithic), B6 = 49.30, B4 = 46.14, B2 = 14.57
var backendBase = map[string]Breakdown{
	// DE, DI, EX, IC, DEQ, DIQ, CQ — IF is accounted separately.
	"M8": {DE: 16.0, DI: 20.0, EX: 104.76, IC: 12.0, DEQ: 5.0, DIQ: 5.0, CQ: 5.0},
	"M6": {DE: 6.3, DI: 7.3, EX: 23.545454545454547, IC: 4.4, DEQ: 1.8, DIQ: 1.8, CQ: 1.8},
	"M4": {DE: 5.5, DI: 6.5, EX: 22.49090909090909, IC: 4.0, DEQ: 1.8, DIQ: 1.8, CQ: 1.8},
	"M2": {DE: 2.0, DI: 2.4, EX: 6.063636363636364, IC: 1.4, DEQ: 0.7, DIQ: 0.7, CQ: 0.7},
}

// PipelineArea returns the per-stage area of one pipeline model's back end
// (no fetch stage). multipipeline applies the 10% execution-core overhead.
//
// Scaled variants (config.ScaleModel) are priced from their base model's
// calibration — resolved by pipeline width, which uniquely identifies the
// four calibrated models — with the queue stages scaled linearly in entry
// count: the dispatch queue tracks the issue queues (IQ+FQ), the completion
// queue tracks the load/store queue, and the decode queue tracks the
// decoupling buffer. Unscaled models hit ratios of exactly 1, so the
// calibrated Fig. 2b/Fig. 3 numbers are untouched.
func PipelineArea(m config.Model, multipipeline bool) (Breakdown, error) {
	cal, err := calibration(m)
	if err != nil {
		return Breakdown{}, err
	}
	base := backendBase[cal.Name]
	if iq, ciq := m.IQ+m.FQ, cal.IQ+cal.FQ; iq != ciq {
		base[DIQ] *= float64(iq) / float64(ciq)
	}
	if m.LQ != cal.LQ {
		base[CQ] *= float64(m.LQ) / float64(cal.LQ)
	}
	if cal.FetchBuf > 0 && m.FetchBuf != cal.FetchBuf {
		base[DEQ] *= float64(m.FetchBuf) / float64(cal.FetchBuf)
	}
	if multipipeline {
		base[EX] *= exCoreOverhead
	}
	return base, nil
}

// calibration resolves the calibrated base model a (possibly scaled)
// pipeline model is priced from: by name for the four base models, else —
// for config.ScaleModel variants, which keep the base name as a prefix
// and never change the width — by that prefix. Anything else is
// uncalibrated and errors, as before.
func calibration(m config.Model) (config.Model, error) {
	if _, ok := backendBase[m.Name]; ok {
		return config.ModelByName(m.Name)
	}
	for _, c := range config.Models() {
		if strings.HasPrefix(m.Name, c.Name) && c.Width == m.Width {
			return c, nil
		}
	}
	return config.Model{}, fmt.Errorf("area: no calibration for model %q (width %d)", m.Name, m.Width)
}

// FetchArea returns the fetch-engine area for a configuration with the
// given multipipeline property. Only one fetch engine exists per processor
// (paper §3: "only one instruction fetch stage is included in the total
// area calculus").
func FetchArea(multipipeline bool) float64 {
	if multipipeline {
		return fetchEngine * fetchMultipipeOverhead
	}
	return fetchEngine
}

// MicroarchArea returns the total per-stage area of a configuration:
// one fetch engine plus every pipeline's back end, with the paper's
// overheads applied for multipipeline configurations.
func MicroarchArea(m config.Microarch) (Breakdown, error) {
	multi := !m.Monolithic
	var total Breakdown
	total[IF] = FetchArea(multi)
	for _, pm := range m.Pipelines {
		b, err := PipelineArea(pm, multi)
		if err != nil {
			return Breakdown{}, err
		}
		total.Add(b)
	}
	return total, nil
}

// Total returns the configuration's total area in mm².
func Total(m config.Microarch) (float64, error) {
	b, err := MicroarchArea(m)
	if err != nil {
		return 0, err
	}
	return b.Total(), nil
}

// MustTotal is Total for known-good configurations; it panics on error.
func MustTotal(m config.Microarch) float64 {
	t, err := Total(m)
	if err != nil {
		panic(err)
	}
	return t
}

// DeltaVsBaseline returns a configuration's area relative to the monolithic
// M8 baseline, as the fraction (area − baseline)/baseline that Fig. 3
// annotates (e.g. −0.27 for 2M4+2M2).
func DeltaVsBaseline(m config.Microarch) (float64, error) {
	a, err := Total(m)
	if err != nil {
		return 0, err
	}
	base := MustTotal(config.MustParse("M8"))
	return (a - base) / base, nil
}

// SinglePipelineProcessor returns the Fig. 2b bar for one pipeline model:
// "each of them represent in fact an hdSMT processor with a single
// pipeline", i.e. M6/M4/M2 carry the 20% bigger fetch engine and the 10%
// execution-core overhead, while M8 is the plain baseline.
func SinglePipelineProcessor(m config.Model) (Breakdown, error) {
	multi := m.Name != "M8"
	b, err := PipelineArea(m, multi)
	if err != nil {
		return Breakdown{}, err
	}
	b[IF] = FetchArea(multi)
	return b, nil
}
