// Package faultinject is a seed-deterministic fault-injection registry:
// named injection points scattered through I/O and execution paths
// (engine store, journals, the simulate call) that can be armed to return
// errors, add latency, or panic with configured probabilities.
//
// Disarmed — the default, and the only state production code ever runs
// in — a Hit is one atomic load and a nil return, so the instrumented
// paths cost nothing. Armed, each point draws from its own rand source
// seeded by (seed, point name), so a chaos run with a fixed seed replays
// the identical fault schedule regardless of goroutine interleaving at
// *other* points. Probabilistic faults never enter result artifacts:
// injection only ever makes paths fail or stall, and the repository's
// determinism invariant (fixed seed -> identical BENCH bytes) is asserted
// with injection disabled.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection-point names. Wired call sites use these constants;
// chaos tests and the hdsmtd -faults flag refer to them by string.
const (
	PointStoreLoad        = "engine.store.load"
	PointStoreSave        = "engine.store.save"
	PointJournalAppend    = "engine.journal.append"
	PointSimulate         = "engine.simulate"
	PointJobJournalAppend = "server.jobjournal.append"
)

// ErrInjected is the error every armed error-fault returns, so callers
// (and tests) can tell injected failures from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault configures one injection point. Probabilities are independent:
// on each Hit the point first maybe sleeps, then maybe panics, then
// maybe returns ErrInjected.
type Fault struct {
	// Err is the probability (0..1) of returning ErrInjected.
	Err float64
	// Panic is the probability of panicking ("injected panic <point>").
	Panic float64
	// Delay is the latency added with probability DelayProb.
	Delay time.Duration
	// DelayProb defaults to 1 when Delay is set and DelayProb is 0.
	DelayProb float64
}

// Counts reports how often a point's faults actually triggered.
type Counts struct {
	Hits   uint64 // Hit calls while armed
	Errs   uint64
	Panics uint64
	Delays uint64
}

type point struct {
	mu     sync.Mutex
	fault  Fault
	rng    *rand.Rand
	counts Counts
}

var (
	armed  atomic.Bool
	mu     sync.Mutex
	points map[string]*point
)

// Enable arms the registry: each named point gets its fault config and a
// rand source seeded by seed and the point's name. Points not in faults
// stay transparent. Enable replaces any previous configuration.
func Enable(seed int64, faults map[string]Fault) {
	mu.Lock()
	defer mu.Unlock()
	points = make(map[string]*point, len(faults))
	for name, f := range faults {
		if f.Delay > 0 && f.DelayProb == 0 {
			f.DelayProb = 1
		}
		h := fnv.New64a()
		h.Write([]byte(name))
		points[name] = &point{fault: f, rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
	}
	armed.Store(true)
}

// Disable disarms every point; Hit returns to its zero-cost path.
func Disable() {
	armed.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
}

// Enabled reports whether the registry is armed.
func Enabled() bool { return armed.Load() }

// Hit evaluates the named injection point: nil and free when the
// registry is disarmed or the point unconfigured; otherwise it may
// sleep, panic, or return ErrInjected per the point's Fault.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.counts.Hits++
	var sleep time.Duration
	doPanic := false
	var err error
	if p.fault.DelayProb > 0 && p.rng.Float64() < p.fault.DelayProb {
		p.counts.Delays++
		sleep = p.fault.Delay
	}
	if p.fault.Panic > 0 && p.rng.Float64() < p.fault.Panic {
		p.counts.Panics++
		doPanic = true
	} else if p.fault.Err > 0 && p.rng.Float64() < p.fault.Err {
		p.counts.Errs++
		err = fmt.Errorf("%w at %s", ErrInjected, name)
	}
	p.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if doPanic {
		panic(fmt.Sprintf("faultinject: injected panic at %s", name))
	}
	return err
}

// CountsFor returns a point's trigger counts (zero when unconfigured or
// disarmed).
func CountsFor(name string) Counts {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return Counts{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// ParseSpec parses the hdsmtd -faults flag syntax: a comma-separated
// list of point configurations,
//
//	point:attr=value+attr=value,point2:...
//
// with attributes err=<prob>, panic=<prob> and delay=<duration>[@prob],
// e.g.
//
//	engine.store.load:err=0.3+delay=5ms@0.5,engine.simulate:panic=0.01
func ParseSpec(spec string) (map[string]Fault, error) {
	out := map[string]Fault{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, attrs, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("faultinject: %q: want point:attr=value[+...]", part)
		}
		var f Fault
		for _, attr := range strings.Split(attrs, "+") {
			key, val, ok := strings.Cut(attr, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: %q: attribute %q is not key=value", part, attr)
			}
			switch key {
			case "err", "panic":
				prob, err := strconv.ParseFloat(val, 64)
				if err != nil || prob < 0 || prob > 1 {
					return nil, fmt.Errorf("faultinject: %q: %s probability %q must be in [0,1]", part, key, val)
				}
				if key == "err" {
					f.Err = prob
				} else {
					f.Panic = prob
				}
			case "delay":
				dur, prob := val, 1.0
				if d, pr, ok := strings.Cut(val, "@"); ok {
					dur = d
					p, err := strconv.ParseFloat(pr, 64)
					if err != nil || p < 0 || p > 1 {
						return nil, fmt.Errorf("faultinject: %q: delay probability %q must be in [0,1]", part, pr)
					}
					prob = p
				}
				d, err := time.ParseDuration(dur)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faultinject: %q: bad delay %q", part, dur)
				}
				f.Delay, f.DelayProb = d, prob
			default:
				return nil, fmt.Errorf("faultinject: %q: unknown attribute %q (want err, panic or delay)", part, key)
			}
		}
		out[name] = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return out, nil
}

// Summary renders the armed configuration one point per line, sorted, for
// startup logging.
func Summary() string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := points[name].fault
		fmt.Fprintf(&b, "%s: err=%g panic=%g delay=%s@%g\n", name, f.Err, f.Panic, f.Delay, f.DelayProb)
	}
	return b.String()
}
