package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsTransparent(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("registry armed at start")
	}
	for i := 0; i < 100; i++ {
		if err := Hit(PointStoreLoad); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	if c := CountsFor(PointStoreLoad); c != (Counts{}) {
		t.Errorf("disarmed counts = %+v, want zero", c)
	}
}

func TestErrorInjectionIsSeedDeterministic(t *testing.T) {
	t.Cleanup(Disable)
	run := func(seed int64) []bool {
		Enable(seed, map[string]Fault{PointStoreLoad: {Err: 0.5}})
		outcomes := make([]bool, 200)
		for i := range outcomes {
			outcomes[i] = Hit(PointStoreLoad) != nil
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	errs := 0
	for _, hit := range a {
		if hit {
			errs++
		}
	}
	if errs == 0 || errs == len(a) {
		t.Errorf("err=0.5 triggered %d/%d times — not probabilistic", errs, len(a))
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical fault schedule")
	}
}

func TestInjectedErrorIsRecognizable(t *testing.T) {
	t.Cleanup(Disable)
	Enable(1, map[string]Fault{PointJournalAppend: {Err: 1}})
	err := Hit(PointJournalAppend)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if c := CountsFor(PointJournalAppend); c.Errs != 1 || c.Hits != 1 {
		t.Errorf("counts = %+v, want 1 err / 1 hit", c)
	}
	// Unconfigured points stay transparent while armed.
	if err := Hit(PointSimulate); err != nil {
		t.Errorf("unconfigured point returned %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	t.Cleanup(Disable)
	Enable(1, map[string]Fault{PointSimulate: {Panic: 1}})
	defer func() {
		if r := recover(); r == nil {
			t.Error("panic=1 did not panic")
		}
		if c := CountsFor(PointSimulate); c.Panics != 1 {
			t.Errorf("counts = %+v, want 1 panic", c)
		}
	}()
	_ = Hit(PointSimulate)
}

func TestDelayInjection(t *testing.T) {
	t.Cleanup(Disable)
	Enable(1, map[string]Fault{PointStoreSave: {Delay: 20 * time.Millisecond}})
	start := time.Now()
	if err := Hit(PointStoreSave); err != nil {
		t.Fatalf("delay-only fault returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("Hit returned after %v, want >= 20ms", d)
	}
	if c := CountsFor(PointStoreSave); c.Delays != 1 {
		t.Errorf("counts = %+v, want 1 delay", c)
	}
}

func TestParseSpec(t *testing.T) {
	faults, err := ParseSpec("engine.store.load:err=0.3+delay=5ms@0.5, engine.simulate:panic=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if got := faults["engine.store.load"]; got.Err != 0.3 || got.Delay != 5*time.Millisecond || got.DelayProb != 0.5 {
		t.Errorf("store.load fault = %+v", got)
	}
	if got := faults["engine.simulate"]; got.Panic != 0.01 {
		t.Errorf("simulate fault = %+v", got)
	}
	// delay without @prob defaults to always.
	faults, err = ParseSpec("engine.journal.append:delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := faults["engine.journal.append"]; got.DelayProb != 1 {
		t.Errorf("delay prob = %g, want 1", got.DelayProb)
	}

	for _, bad := range []string{
		"",
		"noattrs",
		"p:err=2",
		"p:panic=-1",
		"p:delay=xyz",
		"p:delay=1ms@1.5",
		"p:frob=1",
		"p:err",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
