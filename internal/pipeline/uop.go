// Package pipeline defines the in-flight instruction record (UOp) and the
// per-pipeline back-end state of an hdSMT processor: the fetch decoupling
// buffer, the private IQ/FQ/LQ issue queues, and the private functional
// units (paper §2: "Each pipeline also has got its own private instruction
// queues, renaming map tables and functional units").
package pipeline

import (
	"fmt"

	"hdsmt/internal/isa"
	"hdsmt/internal/regfile"
)

// Stage is a UOp's lifecycle position.
type Stage uint8

// Lifecycle stages. Squashed is terminal for wrong-path and flushed
// instructions; Committed is terminal for architecturally retired ones.
const (
	StageFetched    Stage = iota // in a fetch buffer, pre-rename
	StageDispatched              // renamed, waiting in an issue queue
	StageIssued                  // executing on a functional unit
	StageDone                    // result produced, waiting to commit
	StageCommitted
	StageSquashed
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageFetched:
		return "fetched"
	case StageDispatched:
		return "dispatched"
	case StageIssued:
		return "issued"
	case StageDone:
		return "done"
	case StageCommitted:
		return "committed"
	case StageSquashed:
		return "squashed"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// UOp is one dynamic instruction in flight, from fetch to commit or squash.
type UOp struct {
	Inst   isa.Instruction
	Thread int // global thread id
	Pipe   int // pipeline the owning thread is mapped to

	// FetchSeq orders all fetched instructions of a thread, wrong path
	// included (the trace Seq only covers the correct path).
	FetchSeq   uint64
	FetchCycle uint64

	// Front-end prediction state, filled at fetch. Mispredict is known at
	// fetch time in a trace-driven simulator; the squash still happens at
	// resolve time.
	PredTaken  bool
	PredTarget uint64
	Mispredict bool

	// Rename state.
	DestPhys int    // regfile.None when the instruction writes no register
	Src      [2]int // source physical registers, regfile.None if ready-at-rename
	SrcRead  [2]bool

	// Writer chain per (thread, architectural register); see Rename.
	PrevWriter *UOp
	NextWriter *UOp

	Stage     Stage
	Queue     isa.Queue
	IssueAt   uint64 // earliest issue cycle (front-end depth + RF read)
	DoneCycle uint64 // result-ready cycle, valid once issued

	// FlushMiss marks a load the FLUSH mechanism has acted on.
	FlushMiss bool

	// Wakeup state, maintained by the core's event-driven issue scheduler
	// while the uop is dispatched. DispatchSeq is a processor-global stamp
	// that orders ready-list selection identically to queue (dispatch)
	// order; QIdx is the uop's index in its issue queue's slot array,
	// making removal O(1). WaitCount counts source operands not yet
	// produced; Waiting[i] records that a waiter-list entry exists for
	// Src[i]; TimerQueued records a pending issue-timer ring entry (only
	// uops whose operands resolve before IssueAt need one); InReady
	// records membership in the queue's ready list.
	DispatchSeq uint64
	QIdx        int
	WaitCount   int8
	Waiting     [2]bool
	TimerQueued bool
	InReady     bool
}

// ResetFor reinitializes a recycled record for a fresh fetch of the given
// thread/pipe at the given fetch order and cycle. Every field except Inst
// is reset (the caller assigns Inst immediately after, so zeroing it first
// would be wasted work on the simulator's hottest allocation path).
func (u *UOp) ResetFor(thread, pipe int, fetchSeq, fetchCycle uint64) {
	u.Thread = thread
	u.Pipe = pipe
	u.FetchSeq = fetchSeq
	u.FetchCycle = fetchCycle
	u.PredTaken = false
	u.PredTarget = 0
	u.Mispredict = false
	u.DestPhys = regfile.None
	u.Src = [2]int{regfile.None, regfile.None}
	u.SrcRead = [2]bool{}
	u.PrevWriter = nil
	u.NextWriter = nil
	u.Stage = StageFetched
	u.Queue = 0
	u.IssueAt = 0
	u.DoneCycle = 0
	u.FlushMiss = false
	u.DispatchSeq = 0
	u.QIdx = 0
	u.WaitCount = 0
	u.Waiting = [2]bool{}
	u.TimerQueued = false
	u.InReady = false
}

// Ready reports whether both sources are available in rf.
func (u *UOp) Ready(rf *regfile.File) bool {
	return rf.Ready(u.Src[0]) && rf.Ready(u.Src[1])
}

// ReadSources drops the reader references this uop holds (called once, when
// the uop reads the register file at issue, or when it is squashed).
func (u *UOp) ReadSources(rf *regfile.File) {
	for i := range u.Src {
		if !u.SrcRead[i] {
			rf.DropReader(u.Src[i])
			u.SrcRead[i] = true
		}
	}
}

// RenameMap is one thread's architectural-to-physical mapping: the youngest
// in-flight writer per architectural register, or nil when the committed
// (architectural) value is current. Each pipeline owns the map tables of the
// threads mapped to it.
type RenameMap struct {
	writer [isa.NumArchRegs]*UOp
}

// Reset clears all mappings.
func (m *RenameMap) Reset() {
	for i := range m.writer {
		m.writer[i] = nil
	}
}

// Lookup returns the physical register currently holding arch register r,
// or regfile.None when the architectural file has the committed value.
func (m *RenameMap) Lookup(r isa.Reg) int {
	if r == isa.RegNone || r.IsZero() {
		return regfile.None
	}
	if w := m.writer[r]; w != nil {
		return w.DestPhys
	}
	return regfile.None
}

// Rename records u as the newest writer of its destination register,
// linking it into the per-register writer chain used for commit-time
// release and squash-time rollback. The caller has already allocated
// u.DestPhys.
func (m *RenameMap) Rename(u *UOp) {
	r := u.Inst.Dest
	prev := m.writer[r]
	u.PrevWriter = prev
	if prev != nil {
		prev.NextWriter = u
	}
	m.writer[r] = u
}

// Commit finalizes u's mapping at retirement: the value becomes
// architectural, so any younger writer's rollback target becomes "the
// architectural file" and the physical register can be released by the
// caller.
func (m *RenameMap) Commit(u *UOp) {
	r := u.Inst.Dest
	if m.writer[r] == u {
		m.writer[r] = nil
	} else if u.NextWriter != nil {
		u.NextWriter.PrevWriter = nil
	}
	u.NextWriter = nil
	u.PrevWriter = nil
}

// Squash rolls back u's mapping. Squash must proceed youngest-first within
// a thread, so u is the current youngest writer of its register.
func (m *RenameMap) Squash(u *UOp) {
	r := u.Inst.Dest
	if m.writer[r] != u {
		panic(fmt.Sprintf("pipeline: squash of %v which is not the youngest writer of %v", u.Inst.PC, r))
	}
	m.writer[r] = u.PrevWriter
	if u.PrevWriter != nil {
		u.PrevWriter.NextWriter = nil
	}
	u.PrevWriter = nil
	u.NextWriter = nil
}
