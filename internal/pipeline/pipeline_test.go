package pipeline

import (
	"testing"

	"hdsmt/internal/config"
	"hdsmt/internal/isa"
	"hdsmt/internal/regfile"
)

func TestStageString(t *testing.T) {
	names := map[Stage]string{
		StageFetched:    "fetched",
		StageDispatched: "dispatched",
		StageIssued:     "issued",
		StageDone:       "done",
		StageCommitted:  "committed",
		StageSquashed:   "squashed",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Stage(99).String() == "" {
		t.Error("unknown stage empty")
	}
}

func TestUOpReady(t *testing.T) {
	rf := regfile.New(4)
	p0, _ := rf.Alloc()
	p1, _ := rf.Alloc()
	u := &UOp{Src: [2]int{p0, p1}}
	if u.Ready(rf) {
		t.Error("not ready with unproduced sources")
	}
	rf.SetReady(p0)
	if u.Ready(rf) {
		t.Error("half ready is not ready")
	}
	rf.SetReady(p1)
	if !u.Ready(rf) {
		t.Error("both produced: ready")
	}
	free := &UOp{Src: [2]int{regfile.None, regfile.None}}
	if !free.Ready(rf) {
		t.Error("architectural sources are always ready")
	}
}

func TestReadSourcesIdempotent(t *testing.T) {
	rf := regfile.New(2)
	p0, _ := rf.Alloc()
	rf.AddReader(p0)
	u := &UOp{Src: [2]int{p0, regfile.None}}
	u.ReadSources(rf)
	u.ReadSources(rf) // second call must not underflow the reader count
	rf.Release(p0)
	if rf.FreeCount() != 2 {
		t.Error("register not recycled after read + release")
	}
}

// makeWriter constructs a renamed uop writing arch register r.
func makeWriter(t *testing.T, m *RenameMap, rf *regfile.File, r isa.Reg) *UOp {
	t.Helper()
	p, ok := rf.Alloc()
	if !ok {
		t.Fatal("regfile exhausted")
	}
	u := &UOp{Inst: isa.Instruction{Dest: r}, DestPhys: p,
		Src: [2]int{regfile.None, regfile.None}}
	m.Rename(u)
	return u
}

func TestRenameLookup(t *testing.T) {
	var m RenameMap
	rf := regfile.New(8)
	r := isa.IntReg(5)
	if m.Lookup(r) != regfile.None {
		t.Error("unwritten register must map to architectural file")
	}
	u := makeWriter(t, &m, rf, r)
	if m.Lookup(r) != u.DestPhys {
		t.Error("lookup must return newest writer's register")
	}
	if m.Lookup(isa.RegNone) != regfile.None || m.Lookup(isa.RegZero) != regfile.None {
		t.Error("none/zero never map")
	}
}

func TestRenameChainCommitOrder(t *testing.T) {
	var m RenameMap
	rf := regfile.New(8)
	r := isa.IntReg(3)
	w1 := makeWriter(t, &m, rf, r)
	w2 := makeWriter(t, &m, rf, r)

	// Commit w1 (older): map still points at w2; w2's rollback target
	// becomes the architectural file.
	m.Commit(w1)
	rf.Release(w1.DestPhys)
	if m.Lookup(r) != w2.DestPhys {
		t.Error("commit of older writer must not disturb newest mapping")
	}
	if w2.PrevWriter != nil {
		t.Error("younger writer's rollback target must become architectural")
	}

	// Squash w2: map returns to architectural.
	m.Squash(w2)
	rf.Release(w2.DestPhys)
	if m.Lookup(r) != regfile.None {
		t.Error("squash after older commit must restore architectural mapping")
	}
	if rf.FreeCount() != 8 {
		t.Errorf("free = %d, want 8", rf.FreeCount())
	}
}

func TestRenameChainSquashRollback(t *testing.T) {
	var m RenameMap
	rf := regfile.New(8)
	r := isa.IntReg(7)
	w1 := makeWriter(t, &m, rf, r)
	w2 := makeWriter(t, &m, rf, r)
	w3 := makeWriter(t, &m, rf, r)

	// Squash youngest-first: w3 then w2.
	m.Squash(w3)
	rf.Release(w3.DestPhys)
	if m.Lookup(r) != w2.DestPhys {
		t.Error("rollback to w2 failed")
	}
	m.Squash(w2)
	rf.Release(w2.DestPhys)
	if m.Lookup(r) != w1.DestPhys {
		t.Error("rollback to w1 failed")
	}
	// w1 can still commit normally.
	m.Commit(w1)
	rf.Release(w1.DestPhys)
	if m.Lookup(r) != regfile.None {
		t.Error("commit of sole writer must clear the mapping")
	}
}

func TestSquashOutOfOrderPanics(t *testing.T) {
	var m RenameMap
	rf := regfile.New(8)
	r := isa.IntReg(2)
	w1 := makeWriter(t, &m, rf, r)
	makeWriter(t, &m, rf, r) // w2 is newest
	defer func() {
		if recover() == nil {
			t.Error("squashing a non-youngest writer must panic")
		}
	}()
	m.Squash(w1)
}

func TestRenameMapReset(t *testing.T) {
	var m RenameMap
	rf := regfile.New(4)
	makeWriter(t, &m, rf, isa.IntReg(1))
	m.Reset()
	if m.Lookup(isa.IntReg(1)) != regfile.None {
		t.Error("reset incomplete")
	}
}

func TestIssueQueueAddRemove(t *testing.T) {
	q := NewIssueQueue(isa.IQ, 2)
	u1, u2, u3 := &UOp{}, &UOp{}, &UOp{}
	if !q.Add(u1) || !q.Add(u2) {
		t.Fatal("adds failed")
	}
	if q.Add(u3) {
		t.Error("add to full queue must fail")
	}
	if q.Stats().FullStalls != 1 || q.Stats().Dispatches != 2 {
		t.Errorf("stats = %+v", q.Stats())
	}
	q.Remove(u1)
	if q.Len() != 1 || q.Full() {
		t.Error("remove bookkeeping wrong")
	}
	if !q.Add(u3) {
		t.Error("space after remove")
	}
	// Order preserved: u2 then u3.
	var got []*UOp
	q.Do(func(u *UOp) bool { got = append(got, u); return true })
	if len(got) != 2 || got[0] != u2 || got[1] != u3 {
		t.Error("dispatch order not preserved")
	}
}

func TestIssueQueueRemoveMissingPanics(t *testing.T) {
	q := NewIssueQueue(isa.LQ, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	q.Remove(&UOp{})
}

func TestIssueQueueDoEarlyStop(t *testing.T) {
	q := NewIssueQueue(isa.FQ, 4)
	for i := 0; i < 4; i++ {
		q.Add(&UOp{})
	}
	n := 0
	q.Do(func(u *UOp) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("visited %d", n)
	}
}

func TestNewIssueQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewIssueQueue(isa.IQ, 0)
}

func TestBackendConstruction(t *testing.T) {
	b := NewBackend(0, config.M4, 8)
	if b.IQ.Cap() != 32 || b.FQ.Cap() != 32 || b.LQ.Cap() != 32 {
		t.Error("M4 queue capacities wrong")
	}
	if b.FetchBuf.Cap() != 32 {
		t.Error("M4 decoupling buffer must be 32")
	}
	if b.Units.Count(isa.UnitInt) != 3 || b.Units.Count(isa.UnitFP) != 2 || b.Units.Count(isa.UnitLdSt) != 2 {
		t.Error("M4 unit counts wrong")
	}
}

func TestBackendMonolithicLatch(t *testing.T) {
	b := NewBackend(0, config.M8, 8)
	if b.FetchBuf.Cap() != 8 {
		t.Errorf("monolithic latch = %d, want fetch width 8", b.FetchBuf.Cap())
	}
}

func TestBackendQueueFor(t *testing.T) {
	b := NewBackend(0, config.M2, 8)
	if b.QueueFor(isa.Load) != b.LQ || b.QueueFor(isa.Store) != b.LQ {
		t.Error("memory classes route to LQ")
	}
	if b.QueueFor(isa.FPMul) != b.FQ {
		t.Error("FP classes route to FQ")
	}
	if b.QueueFor(isa.IntALU) != b.IQ || b.QueueFor(isa.Branch) != b.IQ {
		t.Error("integer classes route to IQ")
	}
}

func TestBackendContexts(t *testing.T) {
	b := NewBackend(0, config.M4, 8) // 2 contexts
	if !b.HasContextFor() {
		t.Fatal("fresh backend has free contexts")
	}
	b.AssignThread(0)
	b.AssignThread(1)
	if b.HasContextFor() {
		t.Error("M4 holds two contexts only")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-assignment must panic")
		}
	}()
	b.AssignThread(2)
}

func TestBackendReset(t *testing.T) {
	b := NewBackend(0, config.M2, 8)
	b.AssignThread(3)
	b.FetchBuf.PushTail(&UOp{})
	b.IQ.Add(&UOp{})
	b.Reset()
	if b.FetchBuf.Len() != 0 || b.IQ.Len() != 0 {
		t.Error("reset incomplete")
	}
	if len(b.Threads) != 1 {
		t.Error("reset must keep the thread mapping")
	}
}
