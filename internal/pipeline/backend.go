package pipeline

import (
	"fmt"

	"hdsmt/internal/config"
	"hdsmt/internal/funit"
	"hdsmt/internal/isa"
	"hdsmt/internal/queue"
)

// IssueQueue is one private issue queue (IQ, FQ or LQ): a bounded set of
// dispatched uops awaiting operands and a functional unit. Entries keep
// dispatch order so the oldest ready instruction issues first.
type IssueQueue struct {
	kind  isa.Queue
	slots []*UOp
	cap   int
	stats IQStats
}

// IQStats aggregates queue pressure.
type IQStats struct {
	Dispatches uint64
	FullStalls uint64
}

// NewIssueQueue builds a queue with the given capacity.
func NewIssueQueue(kind isa.Queue, capacity int) *IssueQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("pipeline: %v capacity %d must be positive", kind, capacity))
	}
	return &IssueQueue{kind: kind, slots: make([]*UOp, 0, capacity), cap: capacity}
}

// Kind returns which of IQ/FQ/LQ this queue is.
func (q *IssueQueue) Kind() isa.Queue { return q.kind }

// Len returns the number of occupied entries.
func (q *IssueQueue) Len() int { return len(q.slots) }

// Cap returns the capacity.
func (q *IssueQueue) Cap() int { return q.cap }

// Full reports whether no entry is free.
func (q *IssueQueue) Full() bool { return len(q.slots) >= q.cap }

// Stats returns accumulated statistics.
func (q *IssueQueue) Stats() IQStats { return q.stats }

// Add inserts u at the tail; it reports false (recording a stall) when full.
func (q *IssueQueue) Add(u *UOp) bool {
	if q.Full() {
		q.stats.FullStalls++
		return false
	}
	q.slots = append(q.slots, u)
	q.stats.Dispatches++
	return true
}

// Remove deletes u, preserving the order of the remaining entries.
func (q *IssueQueue) Remove(u *UOp) {
	for i, s := range q.slots {
		if s == u {
			copy(q.slots[i:], q.slots[i+1:])
			q.slots = q.slots[:len(q.slots)-1]
			return
		}
	}
	panic(fmt.Sprintf("pipeline: removing uop pc=%#x not in %v", u.Inst.PC, q.kind))
}

// Do calls fn over the entries oldest-first; fn returning false stops early.
// fn must not add or remove entries; collect removals and apply after.
func (q *IssueQueue) Do(fn func(u *UOp) bool) {
	for _, s := range q.slots {
		if !fn(s) {
			return
		}
	}
}

// Clear drops all entries.
func (q *IssueQueue) Clear() { q.slots = q.slots[:0] }

// Backend is one pipeline's private back end: decoupling buffer, issue
// queues and functional units. The pipeline's width bounds dispatch, issue
// and commit per cycle; ThreadsPerCycle bounds how many distinct threads may
// dispatch in one cycle (Fig. 2a "Max Threads/cycle").
type Backend struct {
	Model config.Model
	Index int

	// FetchBuf is the decoupling buffer between the shared fetch engine
	// and this pipeline (paper Fig. 1). The monolithic M8 has no such
	// buffer architecturally; it gets a fetch-width latch instead.
	FetchBuf *queue.Deque[*UOp]

	IQ, FQ, LQ *IssueQueue
	Units      *funit.Pool

	// Threads holds the global IDs of threads mapped to this pipeline.
	Threads []int
}

// NewBackend builds the back end for one pipeline. fetchWidth sizes the
// monolithic latch when the model declares no decoupling buffer.
func NewBackend(index int, m config.Model, fetchWidth int) *Backend {
	bufSize := m.FetchBuf
	if bufSize == 0 {
		bufSize = fetchWidth
	}
	return &Backend{
		Model:    m,
		Index:    index,
		FetchBuf: queue.New[*UOp](bufSize),
		IQ:       NewIssueQueue(isa.IQ, m.IQ),
		FQ:       NewIssueQueue(isa.FQ, m.FQ),
		LQ:       NewIssueQueue(isa.LQ, m.LQ),
		Units:    funit.NewPool(m.IntUnits, m.FPUnits, m.LdStUnits),
	}
}

// QueueFor returns this backend's queue for instruction class c.
func (b *Backend) QueueFor(c isa.Class) *IssueQueue {
	switch isa.QueueFor(c) {
	case isa.LQ:
		return b.LQ
	case isa.FQ:
		return b.FQ
	default:
		return b.IQ
	}
}

// HasContextFor reports whether the pipeline has a free hardware context
// given the number of threads already assigned.
func (b *Backend) HasContextFor() bool {
	return len(b.Threads) < b.Model.Contexts
}

// AssignThread maps a thread to this pipeline; it panics when no context is
// free (mapping policies must respect capacities).
func (b *Backend) AssignThread(tid int) {
	if !b.HasContextFor() {
		panic(fmt.Sprintf("pipeline %d (%s): no free context for thread %d",
			b.Index, b.Model.Name, tid))
	}
	b.Threads = append(b.Threads, tid)
}

// Reset clears all per-run state but keeps the thread mapping.
func (b *Backend) Reset() {
	b.FetchBuf.Clear()
	b.IQ.Clear()
	b.FQ.Clear()
	b.LQ.Clear()
	b.Units.Reset()
}
