package pipeline

import (
	"fmt"

	"hdsmt/internal/config"
	"hdsmt/internal/funit"
	"hdsmt/internal/isa"
	"hdsmt/internal/queue"
)

// IssueQueue is one private issue queue (IQ, FQ or LQ): a bounded set of
// dispatched uops awaiting operands and a functional unit. Entries keep
// dispatch order so the oldest ready instruction issues first.
//
// The slot array is index-tracked with tombstones: each entry records its
// position in UOp.QIdx, so Remove is O(1) (nil the slot) with periodic
// compaction amortizing to O(1) per removal while iteration order stays
// oldest-first. Alongside the slots the queue keeps a ready list — the
// dispatched entries whose operands are all available and whose front-end
// delay has elapsed — ordered by DispatchSeq, which within one queue is
// dispatch order. The core's wakeup logic moves entries onto the ready
// list exactly when their last dependency resolves, so the per-cycle issue
// scan touches only issuable work.
type IssueQueue struct {
	kind  isa.Queue
	slots []*UOp // dispatch order; nil entries are tombstones
	n     int    // live (non-tombstone) entries
	dead  int    // tombstones awaiting compaction
	cap   int
	// ready holds the issuable entries in ascending DispatchSeq; the live
	// window is ready[readyHead:]. The head index makes the two dominant
	// operations O(1): the oldest entry issuing (pop-front) and a young
	// entry waking (append at the tail).
	ready     []*UOp
	readyHead int
	stats     IQStats
}

// IQStats aggregates queue pressure.
type IQStats struct {
	Dispatches uint64
	FullStalls uint64
}

// NewIssueQueue builds a queue with the given capacity.
func NewIssueQueue(kind isa.Queue, capacity int) *IssueQueue {
	if capacity <= 0 {
		panic(fmt.Sprintf("pipeline: %v capacity %d must be positive", kind, capacity))
	}
	return &IssueQueue{
		kind:  kind,
		slots: make([]*UOp, 0, capacity),
		ready: make([]*UOp, 0, capacity),
		cap:   capacity,
	}
}

// Kind returns which of IQ/FQ/LQ this queue is.
func (q *IssueQueue) Kind() isa.Queue { return q.kind }

// Len returns the number of occupied entries.
func (q *IssueQueue) Len() int { return q.n }

// Cap returns the capacity.
func (q *IssueQueue) Cap() int { return q.cap }

// Full reports whether no entry is free.
func (q *IssueQueue) Full() bool { return q.n >= q.cap }

// Stats returns accumulated statistics.
func (q *IssueQueue) Stats() IQStats { return q.stats }

// Add inserts u at the tail; it reports false (recording a stall) when full.
func (q *IssueQueue) Add(u *UOp) bool {
	if q.Full() {
		q.stats.FullStalls++
		return false
	}
	u.QIdx = len(q.slots)
	q.slots = append(q.slots, u)
	q.n++
	q.stats.Dispatches++
	return true
}

// Remove deletes u, preserving the order of the remaining entries. The slot
// becomes a tombstone; compaction runs once tombstones outnumber live
// entries, so removal is O(1) amortized. A ready-list entry, if any, is
// dropped too.
func (q *IssueQueue) Remove(u *UOp) {
	if u.QIdx < 0 || u.QIdx >= len(q.slots) || q.slots[u.QIdx] != u {
		panic(fmt.Sprintf("pipeline: removing uop pc=%#x not in %v", u.Inst.PC, q.kind))
	}
	q.slots[u.QIdx] = nil
	u.QIdx = -1
	q.n--
	q.dead++
	if u.InReady {
		q.RemoveReady(u)
	}
	if q.dead > q.n {
		q.compact()
	}
}

// compact squeezes tombstones out of the slot array in place.
func (q *IssueQueue) compact() {
	w := 0
	for _, s := range q.slots {
		if s != nil {
			s.QIdx = w
			q.slots[w] = s
			w++
		}
	}
	q.slots = q.slots[:w]
	q.dead = 0
}

// Do calls fn over the entries oldest-first; fn returning false stops early.
// fn must not add or remove entries; collect removals and apply after.
func (q *IssueQueue) Do(fn func(u *UOp) bool) {
	for _, s := range q.slots {
		if s != nil && !fn(s) {
			return
		}
	}
}

// PushReady links u into the ready list, keeping it sorted by DispatchSeq
// (dispatch order within a queue), so selection order matches an
// oldest-first scan of the slots. It is a no-op when u is already linked.
// The common case — u younger than every current entry — is an append.
func (q *IssueQueue) PushReady(u *UOp) {
	if u.InReady {
		return
	}
	u.InReady = true
	if q.readyHead == len(q.ready) {
		q.ready = q.ready[:0]
		q.readyHead = 0
	} else if len(q.ready) == cap(q.ready) && q.readyHead > 0 {
		// Slide the live window back to the front before appending, so
		// the backing array stays bounded by the peak live count instead
		// of growing with every pop-front while the list is non-empty.
		n := copy(q.ready, q.ready[q.readyHead:])
		q.ready = q.ready[:n]
		q.readyHead = 0
	}
	if n := len(q.ready); n == q.readyHead || q.ready[n-1].DispatchSeq < u.DispatchSeq {
		q.ready = append(q.ready, u)
		return
	}
	live := q.ready[q.readyHead:]
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].DispatchSeq > u.DispatchSeq {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.ready = append(q.ready, nil)
	live = q.ready[q.readyHead:]
	copy(live[lo+1:], live[lo:])
	live[lo] = u
}

// RemoveReady unlinks u from the ready list. The common case — the oldest
// entry, just issued — is a head-index bump.
func (q *IssueQueue) RemoveReady(u *UOp) {
	if !u.InReady {
		return
	}
	u.InReady = false
	if q.ready[q.readyHead] == u {
		q.readyHead++
		if q.readyHead == len(q.ready) {
			q.ready = q.ready[:0]
			q.readyHead = 0
		}
		return
	}
	live := q.ready[q.readyHead:]
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].DispatchSeq >= u.DispatchSeq {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(live) || live[lo] != u {
		panic(fmt.Sprintf("pipeline: ready-list entry pc=%#x missing from %v", u.Inst.PC, q.kind))
	}
	copy(live[lo:], live[lo+1:])
	q.ready = q.ready[:len(q.ready)-1]
}

// Ready returns the ready list, oldest-first. Callers must not mutate it;
// collect removals during iteration and apply them after.
func (q *IssueQueue) Ready() []*UOp { return q.ready[q.readyHead:] }

// ReadyLen returns the number of issuable entries.
func (q *IssueQueue) ReadyLen() int { return len(q.ready) - q.readyHead }

// Clear drops all entries.
func (q *IssueQueue) Clear() {
	q.slots = q.slots[:0]
	q.ready = q.ready[:0]
	q.n, q.dead = 0, 0
	q.readyHead = 0
}

// Backend is one pipeline's private back end: decoupling buffer, issue
// queues and functional units. The pipeline's width bounds dispatch, issue
// and commit per cycle; ThreadsPerCycle bounds how many distinct threads may
// dispatch in one cycle (Fig. 2a "Max Threads/cycle").
type Backend struct {
	Model config.Model
	Index int

	// FetchBuf is the decoupling buffer between the shared fetch engine
	// and this pipeline (paper Fig. 1). The monolithic M8 has no such
	// buffer architecturally; it gets a fetch-width latch instead.
	FetchBuf *queue.Deque[*UOp]

	IQ, FQ, LQ *IssueQueue
	// Queues lists the issue queues in selection order (IQ, LQ, FQ),
	// prebuilt so the per-cycle issue scan does not rebuild the set.
	Queues [3]*IssueQueue
	Units  *funit.Pool

	// Threads holds the global IDs of threads mapped to this pipeline.
	Threads []int
}

// NewBackend builds the back end for one pipeline. fetchWidth sizes the
// monolithic latch when the model declares no decoupling buffer.
func NewBackend(index int, m config.Model, fetchWidth int) *Backend {
	bufSize := m.FetchBuf
	if bufSize == 0 {
		bufSize = fetchWidth
	}
	b := &Backend{
		Model:    m,
		Index:    index,
		FetchBuf: queue.New[*UOp](bufSize),
		IQ:       NewIssueQueue(isa.IQ, m.IQ),
		FQ:       NewIssueQueue(isa.FQ, m.FQ),
		LQ:       NewIssueQueue(isa.LQ, m.LQ),
		Units:    funit.NewPool(m.IntUnits, m.FPUnits, m.LdStUnits),
	}
	b.Queues = [3]*IssueQueue{b.IQ, b.LQ, b.FQ}
	return b
}

// QueueFor returns this backend's queue for instruction class c.
func (b *Backend) QueueFor(c isa.Class) *IssueQueue {
	switch isa.QueueFor(c) {
	case isa.LQ:
		return b.LQ
	case isa.FQ:
		return b.FQ
	default:
		return b.IQ
	}
}

// HasContextFor reports whether the pipeline has a free hardware context
// given the number of threads already assigned.
func (b *Backend) HasContextFor() bool {
	return len(b.Threads) < b.Model.Contexts
}

// AssignThread maps a thread to this pipeline; it panics when no context is
// free (mapping policies must respect capacities).
func (b *Backend) AssignThread(tid int) {
	if !b.HasContextFor() {
		panic(fmt.Sprintf("pipeline %d (%s): no free context for thread %d",
			b.Index, b.Model.Name, tid))
	}
	b.Threads = append(b.Threads, tid)
}

// Reset clears all per-run state but keeps the thread mapping.
func (b *Backend) Reset() {
	b.FetchBuf.Clear()
	b.IQ.Clear()
	b.FQ.Clear()
	b.LQ.Clear()
	b.Units.Reset()
}
