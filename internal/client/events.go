package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hdsmt/internal/obslog"
	"hdsmt/internal/retry"
	"hdsmt/internal/server"
)

// requestID resolves the correlation ID for one exchange: the ID already
// bound to ctx (so a caller's ID threads through every request it makes),
// or a freshly minted one. Either way the header is always present, so
// the server never has to invent an ID for a client of this package and
// both sides' logs share one correlation key.
func requestID(ctx context.Context) string {
	if id := obslog.RequestID(ctx); id != "" {
		return id
	}
	return obslog.NewRequestID()
}

// Events fetches a job's timeline snapshot (GET /jobs/{id}/events).
func (c *Client) Events(ctx context.Context, id string) (server.EventsPage, error) {
	var page server.EventsPage
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/jobs/"+id+"/events", nil, &page)
	})
	return page, err
}

// Stream follows a job's timeline live over SSE, invoking fn for every
// event in sequence order. It returns nil once the job's terminal event
// (settled, evicted or interrupted) has been delivered, or the first
// error after reconnection attempts are exhausted. Dropped connections
// resume with Last-Event-ID, so fn never sees a gap or a duplicate;
// after resumes past events already seen (0 streams from the beginning).
// fn returning an error stops the stream and surfaces that error.
func (c *Client) Stream(ctx context.Context, id string, after int64, fn func(server.Event) error) error {
	last := after
	return retry.Do(ctx, c.policy, func() error {
		err := c.streamOnce(ctx, id, &last, fn)
		if err != nil && ctx.Err() != nil {
			return retry.Permanent(ctx.Err())
		}
		return err
	})
}

// streamOnce runs one SSE connection, advancing *last as events arrive so
// a retry resumes exactly where this attempt died.
func (c *Client) streamOnce(ctx context.Context, id string, last *int64, fn func(server.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return retry.Permanent(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	req.Header.Set(obslog.HeaderRequestID, requestID(ctx))
	if *last > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", *last))
	}
	// The stream outlives any sane request timeout; rely on ctx instead.
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return err // transport error: reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var decoded struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&decoded) == nil {
			apiErr.Message = decoded.Error
		}
		if apiErr.retryable() {
			return apiErr
		}
		return retry.Permanent(apiErr)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data strings.Builder
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch what we accumulated.
			if data.Len() > 0 {
				var ev server.Event
				if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
					return retry.Permanent(fmt.Errorf("decoding SSE event: %w", err))
				}
				data.Reset()
				if ev.Seq > *last {
					*last = ev.Seq
					if err := fn(ev); err != nil {
						return retry.Permanent(err)
					}
					terminal = terminalEvent(ev.Type)
				}
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event: lines (redundant with the JSON) and ": hb"
			// heartbeat comments.
		}
	}
	if terminal {
		return nil // server closed after the terminal event: done
	}
	if err := sc.Err(); err != nil {
		return err // torn connection: reconnect from *last
	}
	// Clean EOF without a terminal event — the server drained; reconnect.
	return fmt.Errorf("event stream for %s ended before job settled", id)
}

// terminalEvent mirrors the server's classification of stream-ending
// event types.
func terminalEvent(typ string) bool {
	switch typ {
	case server.EventSettled, server.EventEvicted, server.EventInterrupted:
		return true
	}
	return false
}
