package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hdsmt/internal/obslog"
	"hdsmt/internal/retry"
	"hdsmt/internal/server"
	"hdsmt/internal/telemetry"
)

// requestID resolves the correlation ID for one exchange: the ID already
// bound to ctx (so a caller's ID threads through every request it makes),
// or a freshly minted one. Either way the header is always present, so
// the server never has to invent an ID for a client of this package and
// both sides' logs share one correlation key.
func requestID(ctx context.Context) string {
	if id := obslog.RequestID(ctx); id != "" {
		return id
	}
	return obslog.NewRequestID()
}

// traceContext resolves the trace identity for one exchange, mirroring
// requestID: the context bound to ctx (telemetry.WithTraceContext, so a
// caller's trace threads through every request it makes — a loadgen run
// stitches into one trace per job), or a freshly minted one. The
// traceparent header is always present, so a job submitted by this
// package always roots its span tree at a span the client named.
func traceContext(ctx context.Context) telemetry.TraceContext {
	if tc, ok := telemetry.TraceContextFrom(ctx); ok {
		return tc
	}
	return telemetry.NewTraceContext()
}

// Events fetches a job's timeline snapshot (GET /jobs/{id}/events).
func (c *Client) Events(ctx context.Context, id string) (server.EventsPage, error) {
	var page server.EventsPage
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/jobs/"+id+"/events", nil, &page)
	})
	return page, err
}

// Stream follows a job's timeline live over SSE, invoking fn for every
// event in sequence order. It returns nil once the job's terminal event
// (settled, evicted or interrupted) has been delivered, or the first
// error after reconnection attempts are exhausted. Dropped connections
// resume with Last-Event-ID, so fn never sees a gap or a duplicate;
// after resumes past events already seen (0 streams from the beginning).
// fn returning an error stops the stream and surfaces that error.
func (c *Client) Stream(ctx context.Context, id string, after int64, fn func(server.Event) error) error {
	last := after
	return retry.Do(ctx, c.policy, func() error {
		err := c.streamOnce(ctx, "/jobs/"+id+"/events", &last, false, fn)
		if err != nil && ctx.Err() != nil {
			return retry.Permanent(ctx.Err())
		}
		return err
	})
}

// Watch follows the server-wide event firehose (GET /events) live: every
// job's timeline events interleaved, each stamped with its job ID. The
// feed never settles, so Watch runs until ctx is canceled (returned as
// ctx's error), fn returns an error, or the server drains (returned as
// nil — the feed is over). Dropped connections resume with
// Last-Event-ID like Stream.
func (c *Client) Watch(ctx context.Context, after int64, fn func(server.Event) error) error {
	last := after
	return retry.Do(ctx, c.policy, func() error {
		err := c.streamOnce(ctx, "/events", &last, true, fn)
		if err != nil && ctx.Err() != nil {
			return retry.Permanent(ctx.Err())
		}
		return err
	})
}

// streamOnce runs one SSE connection against path, advancing *last as
// events arrive so a retry resumes exactly where this attempt died.
// follow marks a never-settling feed: terminal job events pass through
// without ending the stream, and a clean EOF means the server drained.
func (c *Client) streamOnce(ctx context.Context, path string, last *int64, follow bool, fn func(server.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return retry.Permanent(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	req.Header.Set(obslog.HeaderRequestID, requestID(ctx))
	req.Header.Set(telemetry.HeaderTraceparent, traceContext(ctx).Traceparent())
	if *last > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", *last))
	}
	// The stream outlives any sane request timeout; rely on ctx instead.
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return err // transport error: reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var decoded struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&decoded) == nil {
			apiErr.Message = decoded.Error
		}
		if apiErr.retryable() {
			return apiErr
		}
		return retry.Permanent(apiErr)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data strings.Builder
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch what we accumulated.
			if data.Len() > 0 {
				var ev server.Event
				if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
					return retry.Permanent(fmt.Errorf("decoding SSE event: %w", err))
				}
				data.Reset()
				if ev.Seq > *last {
					*last = ev.Seq
					if err := fn(ev); err != nil {
						return retry.Permanent(err)
					}
					terminal = !follow && terminalEvent(ev.Type)
				}
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event: lines (redundant with the JSON) and ": hb"
			// heartbeat comments.
		}
	}
	if terminal {
		return nil // server closed after the terminal event: done
	}
	if err := sc.Err(); err != nil {
		return err // torn connection: reconnect from *last
	}
	if follow {
		return nil // clean EOF on a feed: the server drained; the feed is over
	}
	// Clean EOF without a terminal event — the server drained; reconnect.
	return fmt.Errorf("event stream for %s ended before job settled", path)
}

// terminalEvent mirrors the server's classification of stream-ending
// event types.
func terminalEvent(typ string) bool {
	switch typ {
	case server.EventSettled, server.EventEvicted, server.EventInterrupted:
		return true
	}
	return false
}
