// Package client is a Go client for the hdsmtd job API that cooperates
// with the server's backpressure: 429 and 503 responses are retried with
// capped exponential backoff (internal/retry), honoring the server's
// Retry-After hint exactly, while 4xx validation failures surface
// immediately as permanent errors. It exists so in-repo tools and tests
// stop hand-rolling HTTP loops against the daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hdsmt/internal/obslog"
	"hdsmt/internal/retry"
	"hdsmt/internal/server"
	"hdsmt/internal/telemetry"
	"hdsmt/internal/tshist"
)

// Client talks to one hdsmtd instance.
type Client struct {
	base   string
	apiKey string
	hc     *http.Client
	policy retry.Policy
	poll   time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithAPIKey sets the X-API-Key header identifying this client's tenant
// for the server's quotas.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithHTTPClient replaces the underlying http.Client (timeouts, proxies,
// test transports).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy replaces the default backoff schedule used for 429/503
// responses and transport errors.
func WithRetryPolicy(p retry.Policy) Option { return func(c *Client) { c.policy = p } }

// WithPollInterval sets how often Wait polls job status (default 100ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// New builds a client for the server at base (e.g. "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimSuffix(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
		// Submissions are cheap to repeat (the job only exists once the
		// server says 202), so lean on the server's Retry-After rather
		// than long local waits.
		policy: retry.Policy{Attempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second},
		poll:   100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's backpressure hint (429/503), zero
	// otherwise. It implements retry.Delayer through RetryDelay, so
	// retry.Do waits exactly as long as the server asked.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.StatusCode, e.Message)
}

// RetryDelay implements retry.Delayer.
func (e *APIError) RetryDelay() time.Duration { return e.RetryAfter }

// retryable reports whether the response is worth retrying: explicit
// backpressure only. Validation errors (400/404/409/413) repeat
// identically, so they come back as permanent.
func (e *APIError) retryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

// Submit posts spec and returns the accepted job's status, retrying
// through server backpressure (429/503 + Retry-After).
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.Status{}, err
	}
	var st server.Status
	err = retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodPost, "/jobs", body, &st)
	})
	return st, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (server.Status, error) {
	var st server.Status
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	})
	return st, err
}

// List fetches all jobs the server knows, including journal-recovered
// ones.
func (c *Client) List(ctx context.Context) ([]server.Status, error) {
	var out []server.Status
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/jobs", nil, &out)
	})
	return out, err
}

// Wait polls until the job settles (done, failed, canceled or
// interrupted) or ctx expires, returning the final status.
func (c *Client) Wait(ctx context.Context, id string) (server.Status, error) {
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed", "canceled", "interrupted":
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Result decodes a finished job's result into out. A job that settled
// unsuccessfully surfaces as a permanent *APIError with status 409.
func (c *Client) Result(ctx context.Context, id string, out any) error {
	return retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, out)
	})
}

// History fetches the server's windowed metrics view (GET
// /metrics/history): per-kind throughput and latency quantiles over
// 1m/5m/30m, current gauges, and SLO burn status.
func (c *Client) History(ctx context.Context) (tshist.History, error) {
	var h tshist.History
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/metrics/history", nil, &h)
	})
	return h, err
}

// Trace fetches a job's assembled span tree (GET /jobs/{id}/trace).
func (c *Client) Trace(ctx context.Context, id string) (server.TracePage, error) {
	var tp server.TracePage
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodGet, "/jobs/"+id+"/trace", nil, &tp)
	})
	return tp, err
}

// Cancel requests cancellation (POST /jobs/{id}/cancel). Canceling an
// already-settled job returns a permanent 409 *APIError.
func (c *Client) Cancel(ctx context.Context, id string) (server.Status, error) {
	var st server.Status
	err := retry.Do(ctx, c.policy, func() error {
		return c.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &st)
	})
	return st, err
}

// do performs one HTTP exchange, classifying failures for retry.Do:
// transport errors and 429/503 are retryable (the latter carrying the
// server's Retry-After), everything else non-2xx is permanent.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return retry.Permanent(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.apiKey != "" {
		req.Header.Set("X-API-Key", c.apiKey)
	}
	req.Header.Set(obslog.HeaderRequestID, requestID(ctx))
	req.Header.Set(telemetry.HeaderTraceparent, traceContext(ctx).Traceparent())
	resp, err := c.hc.Do(req)
	if err != nil {
		return err // transport error: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var decoded struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&decoded) == nil {
			apiErr.Message = decoded.Error
		}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		if apiErr.retryable() {
			return apiErr
		}
		return retry.Permanent(apiErr)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return retry.Permanent(fmt.Errorf("decoding %s %s response: %w", method, path, err))
	}
	return nil
}
