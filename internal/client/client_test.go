package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hdsmt/internal/client"
	"hdsmt/internal/core"
	"hdsmt/internal/engine"
	"hdsmt/internal/retry"
	"hdsmt/internal/server"
	"hdsmt/internal/sim"
	"hdsmt/internal/telemetry"
)

// TestSubmitHonorsRetryAfter: 429 responses are retried, waiting exactly
// the server's Retry-After rather than the local backoff schedule.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "server saturated"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(server.Status{ID: "job-000042", State: "pending"})
	}))
	defer ts.Close()

	var waits []time.Duration
	c := client.New(ts.URL, client.WithRetryPolicy(retry.Policy{
		Attempts: 5,
		Sleep: func(_ context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}))
	st, err := c.Submit(context.Background(), server.JobSpec{Kind: "run"})
	if err != nil {
		t.Fatalf("Submit = %v", err)
	}
	if st.ID != "job-000042" {
		t.Errorf("id = %q", st.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if len(waits) != 2 {
		t.Fatalf("slept %d times, want 2", len(waits))
	}
	for i, w := range waits {
		if w != 7*time.Second {
			t.Errorf("wait %d = %v, want the server's 7s hint", i, w)
		}
	}
}

// TestValidationErrorsArePermanent: a 400 must surface immediately — one
// request, no retries — as an *APIError carrying the server's message.
func TestValidationErrorsArePermanent(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "unknown job kind"})
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetryPolicy(retry.Policy{
		Attempts: 5,
		Sleep:    func(context.Context, time.Duration) error { return nil },
	}))
	_, err := c.Submit(context.Background(), server.JobSpec{Kind: "nope"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("Submit = %v, want 400 APIError", err)
	}
	if apiErr.Message != "unknown job kind" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retries on 4xx)", got)
	}
}

// TestClientEndToEnd drives a real server: submit with an API key, wait,
// fetch the result, and get an honest 409 trying to cancel a settled job.
func TestClientEndToEnd(t *testing.T) {
	r, err := sim.NewRunner(engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv, err := server.New(r)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithAPIKey("e2e"), client.WithPollInterval(10*time.Millisecond))
	ctx := context.Background()
	st, err := c.Submit(ctx, server.JobSpec{
		Kind: "run", Config: "M8", Workload: "2W1", Budget: 2_000, Warmup: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "e2e" {
		t.Errorf("tenant = %q, want e2e (X-API-Key propagated)", st.Tenant)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	var res core.Results
	if err := c.Result(ctx, st.ID, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("empty result")
	}
	_, err = c.Cancel(ctx, st.ID)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Errorf("Cancel settled job = %v, want 409 APIError", err)
	}
	if _, err := c.Status(ctx, "job-999999"); err == nil {
		t.Error("Status of unknown job succeeded")
	}
	jobs, err := c.List(ctx)
	if err != nil || len(jobs) != 1 {
		t.Errorf("List = %d jobs, %v; want 1, nil", len(jobs), err)
	}
}

// TestClientStampsTraceparent pins the propagation contract on the wire:
// every request carries a traceparent — the context's trace identity
// when one is bound (so a caller's trace threads through all of its
// requests), a freshly minted valid one otherwise.
func TestClientStampsTraceparent(t *testing.T) {
	var headers []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers = append(headers, r.Header.Get(telemetry.HeaderTraceparent))
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(server.Status{ID: "job-000001", State: "pending"})
	}))
	defer ts.Close()
	c := client.New(ts.URL)

	// Unbound context: the client mints a valid identity.
	if _, err := c.Submit(context.Background(), server.JobSpec{Kind: "run"}); err != nil {
		t.Fatal(err)
	}
	if len(headers) != 1 {
		t.Fatalf("server saw %d requests, want 1", len(headers))
	}
	minted, ok := telemetry.ParseTraceparent(headers[0])
	if !ok {
		t.Fatalf("minted traceparent %q is invalid", headers[0])
	}

	// Bound context: the bound identity is sent verbatim on every call.
	tc := telemetry.NewTraceContext()
	ctx := telemetry.WithTraceContext(context.Background(), tc)
	if _, err := c.Submit(ctx, server.JobSpec{Kind: "run"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(ctx, "job-000001"); err != nil {
		t.Fatal(err)
	}
	for _, h := range headers[1:] {
		if h != tc.Traceparent() {
			t.Errorf("request traceparent = %q, want bound %q", h, tc.Traceparent())
		}
	}
	if minted.TraceID == tc.TraceID {
		t.Error("minted and bound trace IDs collide")
	}
}
